//! Executable forms of the paper's theorems (§4.4 and the appendix).
//!
//! * **Theorem 1** (and its generalization, Theorem 3): if a trace is
//!   reusable — some earlier dynamic instance of the *same* trace had the
//!   same live-in locations and values — then every constituent
//!   instruction (sub-trace) is individually reusable.
//! * **Theorem 2** (and Theorem 4): the converse fails — all members
//!   being reusable does *not* make the trace reusable, because each
//!   member may match a *different* past instance.
//!
//! Theorem 1 justifies the paper's upper-bound construction: the
//! instructions coverable by trace reuse are at most the individually
//! reusable ones, so partitioning the stream into maximal reusable runs
//! bounds trace-level reusability from above. [`check_theorem1`] verifies
//! the implication holds over any stream our machinery produces (a strong
//! self-test of signature and live-set computation), and
//! [`theorem2_counterexample`] reproduces the appendix's construction.

use crate::ilr::InstrReuseTable;
use crate::trace::{IoCaps, TraceAccum};
use tlr_isa::{DynInstr, Loc, OpClass};
use tlr_util::fxhash::Signature128;
use tlr_util::FxHashSet;

/// Outcome of a theorem-1 sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TheoremCheck {
    /// Complete traces examined.
    pub traces: u64,
    /// Traces found reusable (same identity + live-ins seen before).
    pub reusable_traces: u64,
    /// Reusable traces containing a non-reusable member — **must be 0**
    /// (a violation falsifies Theorem 1 for this stream, i.e. reveals a
    /// bug in the analysis machinery).
    pub violations: u64,
}

/// Identity+input signature of a trace instance: the member PC sequence
/// (the trace's identity — "different dynamic instances of the same
/// trace") combined with the live-in locations and values.
fn trace_signature(members: &[DynInstr], live_ins: &[(Loc, u64)]) -> u128 {
    let mut sig = Signature128::new(0x7a_5ce5);
    for d in members {
        sig.push(d.pc as u64);
    }
    sig.push(u64::MAX); // separator between identity and inputs
    for (loc, val) in live_ins {
        sig.push(loc.encode());
        sig.push(*val);
    }
    sig.finish()
}

/// Partition `stream` into consecutive traces of `trace_len` instructions
/// (the trailing partial chunk is ignored) and verify Theorem 1: every
/// reusable trace consists solely of individually-reusable instructions.
pub fn check_theorem1(stream: &[DynInstr], trace_len: usize) -> TheoremCheck {
    assert!(trace_len >= 1);
    let mut ilr = InstrReuseTable::new();
    let mut seen: FxHashSet<u128> = FxHashSet::default();
    let mut out = TheoremCheck::default();

    let mut accum = TraceAccum::new(IoCaps::UNLIMITED);
    let mut member_flags: Vec<bool> = Vec::with_capacity(trace_len);
    let mut members: Vec<DynInstr> = Vec::with_capacity(trace_len);

    for d in stream {
        member_flags.push(ilr.probe_insert(d));
        let ok = accum.try_add(d);
        debug_assert!(ok);
        members.push(d.clone());
        if members.len() == trace_len {
            let live_ins = accum.live_ins().to_vec();
            let sig = trace_signature(&members, &live_ins);
            let trace_reusable = !seen.insert(sig);
            out.traces += 1;
            if trace_reusable {
                out.reusable_traces += 1;
                if member_flags.iter().any(|r| !r) {
                    out.violations += 1;
                }
            }
            let _ = accum.finalize();
            members.clear();
            member_flags.clear();
        }
    }
    out
}

/// Theorem 3 check: partition into "big" traces of `sub_len × k`
/// instructions and verify that a reusable big trace implies every
/// constituent sub-trace of `sub_len` instructions is reusable *as a
/// trace*.
pub fn check_theorem3(stream: &[DynInstr], sub_len: usize, k: usize) -> TheoremCheck {
    assert!(sub_len >= 1 && k >= 1);
    let big_len = sub_len * k;
    let mut big_seen: FxHashSet<u128> = FxHashSet::default();
    let mut sub_seen: FxHashSet<u128> = FxHashSet::default();
    let mut out = TheoremCheck::default();

    let mut i = 0;
    while i + big_len <= stream.len() {
        let big = &stream[i..i + big_len];
        // Sub-trace reusability flags, in order.
        let mut sub_flags = Vec::with_capacity(k);
        for s in 0..k {
            let sub = &big[s * sub_len..(s + 1) * sub_len];
            let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
            for d in sub {
                let ok = acc.try_add(d);
                debug_assert!(ok);
            }
            let live = acc.live_ins().to_vec();
            let sig = trace_signature(sub, &live);
            sub_flags.push(!sub_seen.insert(sig));
        }
        let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
        for d in big {
            let ok = acc.try_add(d);
            debug_assert!(ok);
        }
        let live = acc.live_ins().to_vec();
        let sig = trace_signature(big, &live);
        let big_reusable = !big_seen.insert(sig);
        out.traces += 1;
        if big_reusable {
            out.reusable_traces += 1;
            if sub_flags.iter().any(|r| !r) {
                out.violations += 1;
            }
        }
        i += big_len;
    }
    out
}

/// The appendix's Theorem-2 construction: a stream in which, at some
/// point, every instruction of a two-instruction trace is individually
/// reusable while the trace as a whole is not (each member matches a
/// *different* past instance).
///
/// Returns `(stream, trace_len)`; the final trace (last `trace_len`
/// records) is the counterexample.
pub fn theorem2_counterexample() -> (Vec<DynInstr>, usize) {
    let mk = |pc: u32, loc: Loc, val: u64| DynInstr {
        pc,
        next_pc: pc + 1,
        class: OpClass::IntAlu,
        reads: [(loc, val)].into_iter().collect(),
        writes: Default::default(),
    };
    let r1 = Loc::IntReg(1);
    let r2 = Loc::IntReg(2);
    // Instance 1 of trace <pc0, pc1>: inputs (A=10, X=100).
    // Instance 2:                     inputs (B=20, Y=200).
    // Instance 3:                     inputs (A=10, Y=200):
    //   pc0 reusable (matches instance 1), pc1 reusable (matches
    //   instance 2), but the pair (A, Y) was never seen → trace not
    //   reusable.
    let stream = vec![
        mk(0, r1, 10),
        mk(1, r2, 100),
        mk(0, r1, 20),
        mk(1, r2, 200),
        mk(0, r1, 10),
        mk(1, r2, 200),
    ];
    (stream, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(pc: u32, reads: &[(Loc, u64)], writes: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);

    #[test]
    fn identical_repeated_trace_is_reusable_and_clean() {
        // Trace <pc0, pc1> executed twice with identical values.
        let t = vec![mk(0, &[(R1, 1)], &[(R2, 2)]), mk(1, &[(R2, 2)], &[(R1, 3)])];
        let mut stream = t.clone();
        stream.extend(t);
        let res = check_theorem1(&stream, 2);
        assert_eq!(res.traces, 2);
        assert_eq!(res.reusable_traces, 1);
        assert_eq!(res.violations, 0);
    }

    #[test]
    fn theorem2_counterexample_behaves_as_stated() {
        let (stream, trace_len) = theorem2_counterexample();
        // Every member of the last trace is individually reusable.
        let mut ilr = InstrReuseTable::new();
        let flags: Vec<bool> = stream.iter().map(|d| ilr.probe_insert(d)).collect();
        let last = &flags[stream.len() - trace_len..];
        assert!(
            last.iter().all(|&f| f),
            "members must be reusable: {flags:?}"
        );
        // But the trace itself is not reusable.
        let res = check_theorem1(&stream, trace_len);
        assert_eq!(res.traces, 3);
        assert_eq!(
            res.reusable_traces, 0,
            "theorem 2: the whole trace must NOT be reusable"
        );
        assert_eq!(res.violations, 0);
    }

    #[test]
    fn internal_values_do_not_block_trace_reuse() {
        // The trace writes r2 then reads it: r2 is internal, so instances
        // with different *initial* r2 but equal live-ins are the same.
        let a = vec![mk(0, &[(R1, 5)], &[(R2, 6)]), mk(1, &[(R2, 6)], &[(R2, 7)])];
        let mut stream = a.clone();
        stream.extend(a);
        let res = check_theorem1(&stream, 2);
        assert_eq!(res.reusable_traces, 1);
        assert_eq!(res.violations, 0);
    }

    #[test]
    fn theorem3_nested_granularities() {
        // A 4-instruction trace repeated: the big trace (4) is reusable on
        // the second pass, and both sub-traces (2+2) must be too.
        let t: Vec<DynInstr> = (0..4)
            .map(|pc| mk(pc, &[(R1, 9)], &[(R2, pc as u64)]))
            .collect();
        let mut stream = t.clone();
        stream.extend(t);
        let res = check_theorem3(&stream, 2, 2);
        assert_eq!(res.traces, 2);
        assert_eq!(res.reusable_traces, 1);
        assert_eq!(res.violations, 0);
    }

    #[test]
    fn trailing_partial_chunk_ignored() {
        let stream = vec![mk(0, &[], &[]), mk(1, &[], &[]), mk(2, &[], &[])];
        let res = check_theorem1(&stream, 2);
        assert_eq!(res.traces, 1);
    }
}
