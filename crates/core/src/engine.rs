//! The execution-driven trace-reuse engine (§3.3 + §4.6).
//!
//! This is the "realistic" machine of Figure 9: a functional processor
//! front-end that, at every fetch point, first consults the RTM. On a hit
//! — a resident trace starting at the current PC whose recorded live-in
//! values all equal the current architectural values — the processor
//! *skips* the trace: its recorded outputs are applied to the register
//! file and memory, the PC jumps to the trace's next-PC, and none of the
//! covered instructions are fetched or executed. On a miss, one
//! instruction executes normally and is offered to the trace collector.
//!
//! Correctness of the skip is a theorem of the deterministic ISA: every
//! value a trace reads is either produced inside the trace or captured in
//! its live-in set, so matching live-ins imply identical execution. The
//! engine (optionally) verifies this wholesale: a run with reuse enabled
//! must leave the same architectural state as a plain run
//! (`tests/engine_equivalence.rs`).

use crate::collect::{CollectStats, Collector, Heuristic};
use crate::ilr::FiniteIlrBuffer;
use crate::policy::ReplacementPolicy;
use crate::rtm::{ReuseBackend, ReuseTraceMemory, RtmConfig, RtmSnapshot, RtmStats};
use crate::trace::IoCaps;
use crate::valid_bit::InvalidatingRtm;
use tlr_asm::Program;
use tlr_stats::Histogram;
use tlr_vm::{StepResult, Vm, VmError};

/// Which reuse test the engine uses (§3.3 describes both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReuseTest {
    /// Read all input locations and compare against recorded values (the
    /// mechanism the paper evaluates).
    #[default]
    ValueCompare,
    /// Valid bit + invalidation on every architectural write — simpler
    /// test, conservative coverage.
    ValidBit,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// RTM geometry.
    pub rtm: RtmConfig,
    /// Trace-collection heuristic.
    pub heuristic: Heuristic,
    /// Per-trace I/O caps (the paper uses [`IoCaps::PAPER`]).
    pub caps: IoCaps,
    /// Reuse-test mechanism.
    pub reuse_test: ReuseTest,
    /// RTM replacement policy (the paper hard-wires
    /// [`ReplacementPolicy::Lru`]). Ignored by the valid-bit backend,
    /// which has its own invalid-first reclamation.
    pub policy: ReplacementPolicy,
    /// Aging half-life (in RTM ticks) for [`ReplacementPolicy::Lfu`]
    /// victim selection; [`crate::policy::LFU_HALF_LIFE`] by default.
    /// Other policies ignore it.
    pub lfu_half_life: u64,
}

impl EngineConfig {
    /// Figure 9's default: paper caps, value-comparison reuse test, LRU
    /// replacement, caller-chosen RTM and heuristic.
    pub fn paper(rtm: RtmConfig, heuristic: Heuristic) -> Self {
        Self {
            rtm,
            heuristic,
            caps: IoCaps::PAPER,
            reuse_test: ReuseTest::ValueCompare,
            policy: ReplacementPolicy::Lru,
            lfu_half_life: crate::policy::LFU_HALF_LIFE,
        }
    }

    /// Same configuration with the valid-bit reuse test.
    pub fn with_valid_bit(mut self) -> Self {
        self.reuse_test = ReuseTest::ValidBit;
        self
    }

    /// Same configuration under a different RTM replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same configuration under a different LFU aging half-life (the
    /// `--lfu-half-life` knob).
    pub fn with_lfu_half_life(mut self, half_life: u64) -> Self {
        self.lfu_half_life = half_life;
        self
    }
}

/// One engine-level reuse decision, as recorded by the engine tap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReuseEvent {
    /// The RTM answered the fetch at `pc`: `len` instructions were
    /// skipped and control moved to `next_pc`.
    Hit {
        /// Fetch PC the reuse test answered.
        pc: u32,
        /// Dynamic instructions the reused trace covered.
        len: u32,
        /// Where control resumed.
        next_pc: u32,
        /// Per-class histogram of the skipped instructions. May total
        /// less than `len` when the trace came from a snapshot written
        /// before mixes existed; the shortfall is *unattributed*.
        mix: tlr_isa::ClassMix,
    },
    /// The reuse test missed at `pc` and one instruction executed.
    Exec {
        /// Fetch PC that executed normally.
        pc: u32,
        /// Class of the executed instruction.
        class: tlr_isa::OpClass,
    },
}

/// The engine-level tap: an ordered record of every reuse decision the
/// engine took. Where `tlr-persist`'s record mode taps the functional
/// VM (validating *what* executed), this validates the *engine*: two
/// runs under the same configuration must take identical decisions, and
/// a warm start must change them only by hitting earlier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionLog {
    /// Every decision, in fetch order (oldest first; recording stops at
    /// the cap, see [`DecisionLog::dropped`]).
    pub events: Vec<ReuseEvent>,
    /// Decisions *not* recorded because the cap was reached. The digest
    /// covers this count, so a truncated log never silently matches a
    /// complete one of the same prefix.
    pub dropped: u64,
    /// Maximum events retained ([`usize::MAX`] = unbounded).
    cap: usize,
}

impl Default for DecisionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionLog {
    /// An unbounded log.
    pub fn new() -> Self {
        Self::with_cap(usize::MAX)
    }

    /// A log that retains at most `cap` events; further decisions are
    /// counted in [`DecisionLog::dropped`] instead of growing the
    /// buffer, so tapping a long run cannot exhaust memory.
    pub fn with_cap(cap: usize) -> Self {
        Self {
            events: Vec::new(),
            dropped: 0,
            cap,
        }
    }

    /// Record one decision, honouring the cap.
    pub fn push(&mut self, event: ReuseEvent) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of decisions recorded (excluding dropped ones).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Order-sensitive digest of the decision stream — cheap equality
    /// for replay validation without retaining two full logs.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = tlr_util::fxhash::FxHasher64::new();
        self.events.len().hash(&mut h);
        for event in &self.events {
            event.hash(&mut h);
        }
        self.dropped.hash(&mut h);
        h.finish()
    }
}

/// What a run of the engine produced. `PartialEq` compares every counter
/// and the full reused-size histogram — the equality the fast-vs-observed
/// mode tests assert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions the VM actually executed.
    pub executed: u64,
    /// Instructions covered by reuse hits (never fetched).
    pub skipped: u64,
    /// Number of reuse operations (RTM hits taken).
    pub reuse_ops: u64,
    /// Whether the program ran to its `halt`.
    pub halted: bool,
    /// RTM behaviour counters.
    pub rtm: RtmStats,
    /// Collector counters.
    pub collect: CollectStats,
    /// Distribution of reused trace lengths.
    pub reused_sizes: Histogram,
}

impl EngineStats {
    /// Total dynamic instructions the program made progress by
    /// (executed + skipped).
    pub fn total(&self) -> u64 {
        self.executed + self.skipped
    }

    /// Figure 9a's metric: % of dynamic instructions whose execution was
    /// skipped through trace reuse.
    pub fn pct_reused(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.skipped as f64 / self.total() as f64
        }
    }

    /// Figure 9b's metric: average size of a *reused* trace.
    pub fn avg_reused_trace_size(&self) -> f64 {
        if self.reuse_ops == 0 {
            0.0
        } else {
            self.skipped as f64 / self.reuse_ops as f64
        }
    }
}

/// The execution-driven reuse engine: VM + RTM backend + collector.
pub struct TraceReuseEngine {
    vm: Vm,
    rtm: Box<dyn ReuseBackend>,
    collector: Collector,
    executed: u64,
    skipped: u64,
    reuse_ops: u64,
    halted: bool,
    reused_sizes: Histogram,
    /// Engine-level decision tap, recording when enabled.
    tap: Option<DecisionLog>,
}

impl TraceReuseEngine {
    /// Load `program` under `config`. The ILR-driven heuristics get a
    /// finite ILR buffer with the RTM's geometry ("this memory has as
    /// many entries as the RTM", §4.6).
    pub fn new(program: &Program, config: EngineConfig) -> Self {
        let ilr = match config.heuristic {
            Heuristic::IlrNe | Heuristic::IlrExp => Some(FiniteIlrBuffer::new(config.rtm.geometry)),
            Heuristic::FixedExp(_) | Heuristic::BasicBlock => None,
        };
        let rtm: Box<dyn ReuseBackend> = match config.reuse_test {
            ReuseTest::ValueCompare => Box::new(
                ReuseTraceMemory::new_with(config.rtm, config.policy)
                    .with_lfu_half_life(config.lfu_half_life),
            ),
            ReuseTest::ValidBit => Box::new(InvalidatingRtm::new(config.rtm.geometry)),
        };
        Self {
            vm: Vm::new(program),
            rtm,
            collector: Collector::new(config.heuristic, config.caps, ilr),
            executed: 0,
            skipped: 0,
            reuse_ops: 0,
            halted: false,
            reused_sizes: Histogram::new(),
            tap: None,
        }
    }

    /// Like [`TraceReuseEngine::new`], but seed the RTM from a prior
    /// run's [`RtmSnapshot`] so the engine starts warm instead of paying
    /// the full cold-start trace-collection cost.
    ///
    /// The snapshot's geometry overrides `config.rtm`, and the backend is
    /// always the value-comparison RTM (valid-bit state cannot be
    /// persisted — see [`ReuseBackend::snapshot`]).
    pub fn new_warm(program: &Program, config: EngineConfig, snapshot: &RtmSnapshot) -> Self {
        let mut engine = Self::new(
            program,
            EngineConfig {
                rtm: snapshot.config,
                reuse_test: ReuseTest::ValueCompare,
                ..config
            },
        );
        engine.rtm = Box::new(
            ReuseTraceMemory::import_with(snapshot, config.policy)
                .with_lfu_half_life(config.lfu_half_life),
        );
        engine
    }

    /// Access the VM (state inspection in tests).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Start recording every reuse decision into a [`DecisionLog`]
    /// (replaces any previous log). Costs one event per engine step, so
    /// enable it for validation runs, not for long sweeps.
    pub fn enable_tap(&mut self) {
        self.tap = Some(DecisionLog::new());
    }

    /// Like [`enable_tap`](TraceReuseEngine::enable_tap), but the log
    /// retains at most `cap` events (the rest are counted as dropped) —
    /// use this to tap arbitrarily long runs with bounded memory.
    pub fn enable_tap_with_cap(&mut self, cap: usize) {
        self.tap = Some(DecisionLog::with_cap(cap));
    }

    /// The decision log so far, if the tap is enabled.
    pub fn tap(&self) -> Option<&DecisionLog> {
        self.tap.as_ref()
    }

    /// Detach and return the decision log, disabling the tap.
    pub fn take_tap(&mut self) -> Option<DecisionLog> {
        self.tap.take()
    }

    /// Stamp `run` into the provenance of traces collected from here on
    /// ([`crate::policy::TraceMeta::source_run`]). No-op for the
    /// valid-bit backend.
    pub fn set_source_run(&mut self, run: u64) {
        self.rtm.set_source_run(run);
    }

    /// Export the RTM's resident traces for persistence (warm-starting a
    /// later run). `None` for the valid-bit backend.
    pub fn export_rtm(&self) -> Option<RtmSnapshot> {
        self.rtm.snapshot()
    }

    /// Access the RTM backend.
    pub fn rtm(&self) -> &dyn ReuseBackend {
        self.rtm.as_ref()
    }

    /// Run until `halt` or until `budget` total dynamic instructions
    /// (executed + skipped) have been accounted.
    pub fn run(&mut self, budget: u64) -> Result<EngineStats, VmError> {
        while self.executed + self.skipped < budget && !self.halted {
            self.step()?;
        }
        Ok(self.stats())
    }

    /// One engine step: a reuse hit (skipping a whole trace) or one
    /// executed instruction.
    pub fn step(&mut self) -> Result<(), VmError> {
        let pc = self.vm.pc();
        let vm = &self.vm;
        let state = |loc| vm.peek_loc(loc);
        if let Some(hit) = self.rtm.lookup(pc, &state) {
            self.vm.apply_trace(hit.outs.iter().copied(), hit.next_pc)?;
            self.skipped += hit.len as u64;
            self.reuse_ops += 1;
            self.reused_sizes.record(hit.len as u64);
            if let Some(tap) = self.tap.as_mut() {
                tap.push(ReuseEvent::Hit {
                    pc,
                    len: hit.len,
                    next_pc: hit.next_pc,
                    mix: hit.mix,
                });
            }
            // The trace's outputs are architectural writes: valid-bit
            // backends must see them.
            for (loc, _) in hit.outs.iter() {
                self.rtm.on_write(*loc);
            }
            let recs = self.collector.on_reuse_hit(&hit);
            let vm = &self.vm;
            let state = |loc| vm.peek_loc(loc);
            for rec in recs {
                self.rtm.insert(rec, &state);
            }
            return Ok(());
        }
        match self.vm.step()? {
            StepResult::Executed(d) => {
                self.executed += 1;
                if let Some(tap) = self.tap.as_mut() {
                    tap.push(ReuseEvent::Exec { pc, class: d.class });
                }
                for (loc, _) in d.writes.iter() {
                    self.rtm.on_write(*loc);
                }
                let recs = self.collector.on_executed(&d);
                let vm = &self.vm;
                let state = |loc| vm.peek_loc(loc);
                for rec in recs {
                    self.rtm.insert(rec, &state);
                }
            }
            StepResult::Halted => {
                self.halted = true;
            }
        }
        Ok(())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            executed: self.executed,
            skipped: self.skipped,
            reuse_ops: self.reuse_ops,
            halted: self.halted,
            rtm: self.rtm.stats(),
            collect: self.collector.stats(),
            reused_sizes: self.reused_sizes.clone(),
        }
    }
}

/// Convenience: run `program` under `config` for `budget` instructions.
pub fn run_engine(
    program: &Program,
    config: EngineConfig,
    budget: u64,
) -> Result<EngineStats, VmError> {
    TraceReuseEngine::new(program, config).run(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;
    use tlr_isa::{Loc, NullSink};

    /// A tight loop recomputing identical values: ideal for reuse.
    const HOT_LOOP: &str = r#"
            .org 0x80
    tab:    .word 2, 4, 6, 8
            li      r9, 300
    outer:  li      r1, tab
            li      r2, 4
            li      r5, 0
    inner:  ldq     r3, 0(r1)
            addq    r5, r5, r3
            addq    r1, r1, 1
            subq    r2, r2, 1
            bnez    r2, inner
            stq     r5, 64(zero)
            subq    r9, r9, 1
            bnez    r9, outer
            halt
    "#;

    #[test]
    fn fixed_heuristic_reuses_hot_loop() {
        let prog = assemble(HOT_LOOP).unwrap();
        let mut engine = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
        );
        let stats = engine.run(1_000_000).unwrap();
        assert!(stats.halted);
        assert!(stats.reuse_ops > 0, "no reuse at all");
        assert!(
            stats.pct_reused() > 30.0,
            "pct_reused = {}",
            stats.pct_reused()
        );
    }

    #[test]
    fn reuse_preserves_architectural_state() {
        let prog = assemble(HOT_LOOP).unwrap();
        // Plain run.
        let mut plain = tlr_vm::Vm::new(&prog);
        plain.run(1_000_000, &mut NullSink).unwrap();
        let expect = plain.peek_loc(Loc::Mem(64));

        for heuristic in [
            Heuristic::IlrNe,
            Heuristic::IlrExp,
            Heuristic::FixedExp(2),
            Heuristic::FixedExp(6),
        ] {
            let mut engine =
                TraceReuseEngine::new(&prog, EngineConfig::paper(RtmConfig::RTM_512, heuristic));
            let stats = engine.run(1_000_000).unwrap();
            assert!(stats.halted, "{heuristic:?} did not finish");
            assert_eq!(
                engine.vm().peek_loc(Loc::Mem(64)),
                expect,
                "{heuristic:?} corrupted state"
            );
            // Progress accounting matches the plain run exactly.
            assert_eq!(stats.total(), plain.executed(), "{heuristic:?}");
        }
    }

    #[test]
    fn ilr_heuristics_reuse_after_warmup() {
        let prog = assemble(HOT_LOOP).unwrap();
        let mut engine = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::IlrExp),
        );
        let stats = engine.run(1_000_000).unwrap();
        assert!(stats.reuse_ops > 0);
        assert!(stats.pct_reused() > 20.0, "pct = {}", stats.pct_reused());
    }

    #[test]
    fn expansion_grows_reused_traces() {
        let prog = assemble(HOT_LOOP).unwrap();
        let small = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(2)),
        )
        .run(1_000_000)
        .unwrap();
        // With expansion, average reused trace size should exceed the
        // base length 2 eventually.
        assert!(
            small.avg_reused_trace_size() > 2.0,
            "avg = {}",
            small.avg_reused_trace_size()
        );
        assert!(small.collect.expansions > 0);
    }

    #[test]
    fn bigger_rtm_reuses_no_less() {
        let prog = assemble(HOT_LOOP).unwrap();
        let mut results = Vec::new();
        for rtm in [RtmConfig::RTM_512, RtmConfig::RTM_4K] {
            let stats =
                TraceReuseEngine::new(&prog, EngineConfig::paper(rtm, Heuristic::FixedExp(4)))
                    .run(1_000_000)
                    .unwrap();
            results.push(stats.pct_reused());
        }
        // This program's working set fits even the small RTM, so both
        // should reuse; the larger must not do worse by more than noise.
        assert!(results[1] >= results[0] - 1.0, "{results:?}");
    }

    #[test]
    fn warm_start_never_reuses_less_and_preserves_state() {
        let prog = assemble(HOT_LOOP).unwrap();
        let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let mut cold = TraceReuseEngine::new(&prog, config);
        let cold_stats = cold.run(1_000_000).unwrap();
        let snapshot = cold.export_rtm().expect("value-compare RTM snapshots");
        assert!(!snapshot.is_empty());

        let mut warm = TraceReuseEngine::new_warm(&prog, config, &snapshot);
        let warm_stats = warm.run(1_000_000).unwrap();
        assert!(warm_stats.halted);
        assert!(
            warm_stats.pct_reused() >= cold_stats.pct_reused(),
            "warm {} < cold {}",
            warm_stats.pct_reused(),
            cold_stats.pct_reused()
        );
        assert_eq!(
            warm.vm().peek_loc(Loc::Mem(64)),
            cold.vm().peek_loc(Loc::Mem(64)),
            "warm start corrupted architectural state"
        );
    }

    #[test]
    fn tap_records_identical_decisions_across_identical_runs() {
        let prog = assemble(HOT_LOOP).unwrap();
        let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let run = || {
            let mut engine = TraceReuseEngine::new(&prog, config);
            engine.enable_tap();
            engine.run(100_000).unwrap();
            engine.take_tap().expect("tap enabled")
        };
        let (first, second) = (run(), run());
        assert!(!first.is_empty());
        assert_eq!(first.digest(), second.digest());
        assert_eq!(first, second, "engine decisions are not deterministic");
        // The log accounts for every step: hits carry trace lengths,
        // execs one instruction each.
        let (mut skipped, mut executed) = (0u64, 0u64);
        let mut mix_total = 0u64;
        for event in &first.events {
            match event {
                ReuseEvent::Hit { len, mix, .. } => {
                    skipped += *len as u64;
                    mix_total += mix.total();
                }
                ReuseEvent::Exec { .. } => executed += 1,
            }
        }
        let stats = TraceReuseEngine::new(&prog, config).run(100_000).unwrap();
        assert_eq!(skipped, stats.skipped);
        assert_eq!(executed, stats.executed);
        // Cold-run traces are collected with full mixes, so every hit is
        // fully attributed by instruction class.
        assert_eq!(mix_total, stats.skipped, "unattributed skips in a cold run");
    }

    #[test]
    fn tap_cap_bounds_memory_and_digest_sees_truncation() {
        let prog = assemble(HOT_LOOP).unwrap();
        let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let mut engine = TraceReuseEngine::new(&prog, config);
        engine.enable_tap_with_cap(100);
        engine.run(100_000).unwrap();
        let capped = engine.take_tap().unwrap();
        assert_eq!(capped.len(), 100);
        assert!(capped.dropped > 0, "the run surely took > 100 decisions");

        let mut full_engine = TraceReuseEngine::new(&prog, config);
        full_engine.enable_tap();
        full_engine.run(100_000).unwrap();
        let full = full_engine.take_tap().unwrap();
        assert_eq!(full.dropped, 0);
        assert_eq!(
            capped.events[..],
            full.events[..100],
            "the cap must truncate, not alter, the stream"
        );
        // Same prefix, but the digest must still distinguish them.
        assert_ne!(capped.digest(), full.digest());
        let mut prefix = DecisionLog::new();
        for e in &full.events[..100] {
            prefix.push(*e);
        }
        assert_ne!(
            capped.digest(),
            prefix.digest(),
            "dropped count is digested"
        );
    }

    #[test]
    fn tap_digest_replays_identically_under_every_policy() {
        // The engine-level replay oracle, exercised across all three
        // stock policies plus the measured cost-benefit variant: same
        // program + config ⇒ bit-identical decision streams.
        let prog = assemble(HOT_LOOP).unwrap();
        let mut weights_table = [1u16; tlr_isa::OpClass::COUNT];
        weights_table[tlr_isa::OpClass::Load.index()] = 2;
        let mut policies = crate::policy::ReplacementPolicy::ALL.to_vec();
        policies.push(ReplacementPolicy::CostBenefitMeasured(
            crate::policy::ClassWeights::from_table(weights_table),
        ));
        for policy in policies {
            let run = || {
                let mut engine = TraceReuseEngine::new(
                    &prog,
                    EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(4))
                        .with_policy(policy),
                );
                engine.enable_tap();
                let stats = engine.run(60_000).unwrap();
                (engine.take_tap().unwrap(), stats)
            };
            let ((first, stats), (second, _)) = (run(), run());
            assert!(!first.is_empty(), "{policy}");
            assert_eq!(first.digest(), second.digest(), "{policy}");
            assert_eq!(first, second, "{policy}: decisions not deterministic");
            // The log reconstructs the run's totals exactly.
            let (mut skipped, mut executed) = (0u64, 0u64);
            for event in &first.events {
                match event {
                    ReuseEvent::Hit { len, .. } => skipped += u64::from(*len),
                    ReuseEvent::Exec { .. } => executed += 1,
                }
            }
            assert_eq!(skipped, stats.skipped, "{policy}");
            assert_eq!(executed, stats.executed, "{policy}");
        }
    }

    #[test]
    fn lfu_half_life_knob_reaches_the_rtm() {
        // A maximally forgetful half-life must change LFU victim choices
        // on some workload/geometry; at minimum the config plumbs through
        // and runs stay architecturally correct.
        let prog = assemble(HOT_LOOP).unwrap();
        let mut plain = tlr_vm::Vm::new(&prog);
        plain.run(1_000_000, &mut NullSink).unwrap();
        let expect = plain.peek_loc(Loc::Mem(64));
        for half_life in [1u64, 64, crate::policy::LFU_HALF_LIFE, u64::MAX] {
            let config = EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(4))
                .with_policy(ReplacementPolicy::Lfu)
                .with_lfu_half_life(half_life);
            assert_eq!(config.lfu_half_life, half_life);
            let mut engine = TraceReuseEngine::new(&prog, config);
            let stats = engine.run(1_000_000).unwrap();
            assert!(stats.halted, "half_life={half_life}");
            assert_eq!(
                engine.vm().peek_loc(Loc::Mem(64)),
                expect,
                "half_life={half_life} corrupted state"
            );
        }
    }

    #[test]
    fn tap_distinguishes_warm_from_cold_runs() {
        let prog = assemble(HOT_LOOP).unwrap();
        let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let mut cold = TraceReuseEngine::new(&prog, config);
        cold.enable_tap();
        cold.run(1_000_000).unwrap();
        let cold_log = cold.take_tap().unwrap();
        let snapshot = cold.export_rtm().unwrap();

        let mut warm = TraceReuseEngine::new_warm(&prog, config, &snapshot);
        warm.enable_tap();
        warm.run(1_000_000).unwrap();
        let warm_log = warm.take_tap().unwrap();
        assert_ne!(
            cold_log.digest(),
            warm_log.digest(),
            "a warm start must hit earlier than its cold run"
        );
    }

    #[test]
    fn every_policy_preserves_architectural_state() {
        let prog = assemble(HOT_LOOP).unwrap();
        let mut plain = tlr_vm::Vm::new(&prog);
        plain.run(1_000_000, &mut NullSink).unwrap();
        let expect = plain.peek_loc(Loc::Mem(64));

        for policy in crate::policy::ReplacementPolicy::ALL {
            let config =
                EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(4)).with_policy(policy);
            let mut engine = TraceReuseEngine::new(&prog, config);
            let stats = engine.run(1_000_000).unwrap();
            assert!(stats.halted, "{policy}: did not finish");
            assert!(stats.reuse_ops > 0, "{policy}: no reuse at all");
            assert_eq!(
                engine.vm().peek_loc(Loc::Mem(64)),
                expect,
                "{policy} corrupted state"
            );
            assert_eq!(stats.total(), plain.executed(), "{policy}");
        }
    }

    #[test]
    fn budget_bounds_total_progress() {
        let prog = assemble(HOT_LOOP).unwrap();
        let stats = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(4)),
        )
        .run(500)
        .unwrap();
        assert!(!stats.halted);
        // A single step may overshoot by at most one (expanded) trace
        // length.
        assert!(stats.total() >= 500);
        assert!(stats.total() < 500 + 4096);
    }
}
