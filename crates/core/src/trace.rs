//! Traces: live-in / live-out computation, accumulation under I/O caps,
//! and merging (dynamic expansion).
//!
//! A trace (§3.1) is identified by its **input** — starting PC plus the
//! set of live locations (read before written inside the trace) with
//! their values — and its **output** — the locations written with their
//! final values, plus the next PC. [`TraceAccum`] builds those sets
//! incrementally as instructions execute; [`TraceRecord`] is the
//! finished, immutable form stored in the RTM.

use std::hash::{Hash, Hasher};

use tlr_isa::{ClassMix, DynInstr, Loc};
use tlr_util::{FxHashMap, FxHashSet};

/// Per-trace input/output capacity limits.
///
/// Figure 9's realistic configuration: "the number of inputs and outputs
/// have been limited to 8 registers and 4 memory values" — applied to the
/// input side and the output side independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoCaps {
    /// Max register live-ins.
    pub reg_in: usize,
    /// Max memory live-ins.
    pub mem_in: usize,
    /// Max register live-outs.
    pub reg_out: usize,
    /// Max memory live-outs.
    pub mem_out: usize,
}

impl IoCaps {
    /// The paper's limits: 8 registers + 4 memory values on each side.
    pub const PAPER: IoCaps = IoCaps {
        reg_in: 8,
        mem_in: 4,
        reg_out: 8,
        mem_out: 4,
    };

    /// Effectively unlimited (limit studies).
    pub const UNLIMITED: IoCaps = IoCaps {
        reg_in: usize::MAX,
        mem_in: usize::MAX,
        reg_out: usize::MAX,
        mem_out: usize::MAX,
    };
}

/// A finished trace: the RTM entry payload (Figure 1 of the paper).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Starting PC ("initial PC" field).
    pub start_pc: u32,
    /// PC of the instruction that follows the trace ("next PC" field).
    pub next_pc: u32,
    /// Dynamic instructions the trace covers.
    pub len: u32,
    /// Live-in locations and their values, in first-read order.
    pub ins: Box<[(Loc, u64)]>,
    /// Output locations and their final values, in first-write order.
    pub outs: Box<[(Loc, u64)]>,
    /// Per-[`OpClass`](tlr_isa::OpClass) histogram of the instructions
    /// the trace covers. Derived metadata, **not** identity: records
    /// loaded from snapshots written before mixes existed carry an
    /// empty mix and must still deduplicate against freshly collected
    /// ones, so equality and hashing exclude this field.
    pub mix: ClassMix,
}

// Identity is {start_pc, next_pc, len, ins, outs} only — see `mix`.
impl PartialEq for TraceRecord {
    fn eq(&self, other: &Self) -> bool {
        self.start_pc == other.start_pc
            && self.next_pc == other.next_pc
            && self.len == other.len
            && self.ins == other.ins
            && self.outs == other.outs
    }
}

impl Eq for TraceRecord {}

impl Hash for TraceRecord {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.start_pc.hash(state);
        self.next_pc.hash(state);
        self.len.hash(state);
        self.ins.hash(state);
        self.outs.hash(state);
    }
}

/// Value-independent trace identity: the starting PC plus the live-in
/// *shape* — which locations the trace reads, in first-read order — with
/// the values stripped.
///
/// Two executions of the same code whose data differs produce records
/// with equal keys but different live-in values; the RTM's reuse test
/// still compares values at lookup time, so sharing state across keys is
/// always validated before a trace is applied. The key is what cross-run
/// snapshot sharing indexes on (`tlr-serve` resolves a program's *shape
/// fingerprint* the same way at file granularity).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Starting PC of the trace.
    pub start_pc: u32,
    /// Live-in locations in first-read order, values stripped.
    pub ins: Box<[Loc]>,
}

impl TraceRecord {
    /// The record's value-independent identity (see [`TraceKey`]).
    pub fn key(&self) -> TraceKey {
        TraceKey {
            start_pc: self.start_pc,
            ins: self.ins.iter().map(|(loc, _)| *loc).collect(),
        }
    }

    /// Number of register live-ins.
    pub fn reg_ins(&self) -> usize {
        self.ins.iter().filter(|(l, _)| !l.is_mem()).count()
    }

    /// Number of memory live-ins.
    pub fn mem_ins(&self) -> usize {
        self.ins.iter().filter(|(l, _)| l.is_mem()).count()
    }

    /// Number of register live-outs.
    pub fn reg_outs(&self) -> usize {
        self.outs.iter().filter(|(l, _)| !l.is_mem()).count()
    }

    /// Number of memory live-outs.
    pub fn mem_outs(&self) -> usize {
        self.outs.iter().filter(|(l, _)| l.is_mem()).count()
    }

    /// Merge `self` followed immediately by `next` into one longer trace
    /// (dynamic expansion, §3.2 / Figure 9's `EXP` heuristics).
    ///
    /// * merged inputs = `self.ins` plus those of `next.ins` whose
    ///   location `self` does not write (those are satisfied internally);
    /// * merged outputs = `self.outs` overridden by `next.outs` (the
    ///   later write is the final value), preserving first-write order;
    /// * `next_pc` comes from `next`.
    ///
    /// Returns `None` if the merged trace would exceed `caps`, or if the
    /// traces are not adjacent (`self.next_pc != next.start_pc`).
    pub fn merge(&self, next: &TraceRecord, caps: &IoCaps) -> Option<TraceRecord> {
        if self.next_pc != next.start_pc {
            return None;
        }
        let self_out_locs: FxHashSet<Loc> = self.outs.iter().map(|(l, _)| *l).collect();
        let self_in_locs: FxHashSet<Loc> = self.ins.iter().map(|(l, _)| *l).collect();
        let mut ins: Vec<(Loc, u64)> = self.ins.to_vec();
        for (loc, val) in next.ins.iter() {
            if !self_out_locs.contains(loc) && !self_in_locs.contains(loc) {
                ins.push((*loc, *val));
            }
        }
        let mut outs: Vec<(Loc, u64)> = self.outs.to_vec();
        let mut out_index: FxHashMap<Loc, usize> =
            outs.iter().enumerate().map(|(i, (l, _))| (*l, i)).collect();
        for (loc, val) in next.outs.iter() {
            match out_index.get(loc) {
                Some(i) => outs[*i].1 = *val,
                None => {
                    out_index.insert(*loc, outs.len());
                    outs.push((*loc, *val));
                }
            }
        }
        let record = TraceRecord {
            start_pc: self.start_pc,
            next_pc: next.next_pc,
            len: self.len + next.len,
            ins: ins.into_boxed_slice(),
            outs: outs.into_boxed_slice(),
            mix: self.mix.sum(next.mix),
        };
        record.within_caps(caps).then_some(record)
    }

    /// Whether the record's live-in/live-out sets fit within `caps`.
    /// Collection guarantees this by construction; deserialization paths
    /// re-check it on untrusted input.
    pub fn within_caps(&self, caps: &IoCaps) -> bool {
        self.reg_ins() <= caps.reg_in
            && self.mem_ins() <= caps.mem_in
            && self.reg_outs() <= caps.reg_out
            && self.mem_outs() <= caps.mem_out
    }
}

/// Incremental trace accumulator.
///
/// Feed executed instructions with [`TraceAccum::try_add`]; it refuses
/// (without mutating) any instruction that would push the live-in or
/// live-out sets past the caps, letting the collector finalize the
/// current trace and start a new one.
#[derive(Debug)]
pub struct TraceAccum {
    caps: IoCaps,
    start_pc: Option<u32>,
    next_pc: u32,
    len: u32,
    ins: Vec<(Loc, u64)>,
    outs: Vec<(Loc, u64)>,
    mix: ClassMix,
    in_locs: FxHashSet<Loc>,
    out_index: FxHashMap<Loc, usize>,
    reg_ins: usize,
    mem_ins: usize,
    reg_outs: usize,
    mem_outs: usize,
}

impl TraceAccum {
    /// Empty accumulator under `caps`.
    pub fn new(caps: IoCaps) -> Self {
        Self {
            caps,
            start_pc: None,
            next_pc: 0,
            len: 0,
            ins: Vec::new(),
            outs: Vec::new(),
            mix: ClassMix::EMPTY,
            in_locs: FxHashSet::default(),
            out_index: FxHashMap::default(),
            reg_ins: 0,
            mem_ins: 0,
            reg_outs: 0,
            mem_outs: 0,
        }
    }

    /// Number of instructions accumulated.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when no instructions have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Try to append one executed instruction. Returns `false` — leaving
    /// the accumulator untouched — if the addition would exceed the I/O
    /// caps. Instructions must be fed in execution order; the first one
    /// fixes `start_pc`, the last one fixes `next_pc`.
    pub fn try_add(&mut self, d: &DynInstr) -> bool {
        // Count the *new* live-ins and live-outs this instruction adds.
        let mut new_reg_ins = 0usize;
        let mut new_mem_ins = 0usize;
        for (loc, _) in d.reads.iter() {
            // A location is a new live-in if the trace has neither
            // written it nor already recorded it as live-in.
            if !self.out_index.contains_key(loc) && !self.in_locs.contains(loc) {
                if loc.is_mem() {
                    new_mem_ins += 1;
                } else {
                    new_reg_ins += 1;
                }
            }
        }
        let mut new_reg_outs = 0usize;
        let mut new_mem_outs = 0usize;
        for (loc, _) in d.writes.iter() {
            if !self.out_index.contains_key(loc) {
                if loc.is_mem() {
                    new_mem_outs += 1;
                } else {
                    new_reg_outs += 1;
                }
            }
        }
        if self.reg_ins + new_reg_ins > self.caps.reg_in
            || self.mem_ins + new_mem_ins > self.caps.mem_in
            || self.reg_outs + new_reg_outs > self.caps.reg_out
            || self.mem_outs + new_mem_outs > self.caps.mem_out
        {
            return false;
        }
        // Commit.
        if self.start_pc.is_none() {
            self.start_pc = Some(d.pc);
        }
        for (loc, val) in d.reads.iter() {
            if !self.out_index.contains_key(loc) && self.in_locs.insert(*loc) {
                self.ins.push((*loc, *val));
                if loc.is_mem() {
                    self.mem_ins += 1;
                } else {
                    self.reg_ins += 1;
                }
            }
        }
        for (loc, val) in d.writes.iter() {
            match self.out_index.get(loc) {
                Some(i) => self.outs[*i].1 = *val,
                None => {
                    self.out_index.insert(*loc, self.outs.len());
                    self.outs.push((*loc, *val));
                    if loc.is_mem() {
                        self.mem_outs += 1;
                    } else {
                        self.reg_outs += 1;
                    }
                }
            }
        }
        self.next_pc = d.next_pc;
        self.mix.record(d.class);
        self.len += 1;
        true
    }

    /// Finish the trace, resetting the accumulator. Returns `None` when
    /// empty.
    pub fn finalize(&mut self) -> Option<TraceRecord> {
        if self.len == 0 {
            return None;
        }
        let record = TraceRecord {
            start_pc: self.start_pc.take().unwrap(),
            next_pc: self.next_pc,
            len: self.len,
            ins: std::mem::take(&mut self.ins).into_boxed_slice(),
            outs: std::mem::take(&mut self.outs).into_boxed_slice(),
            mix: std::mem::take(&mut self.mix),
        };
        self.len = 0;
        self.in_locs.clear();
        self.out_index.clear();
        self.reg_ins = 0;
        self.mem_ins = 0;
        self.reg_outs = 0;
        self.mem_outs = 0;
        Some(record)
    }

    /// Live-in locations accumulated so far (first-read order).
    pub fn live_ins(&self) -> &[(Loc, u64)] {
        &self.ins
    }

    /// Output locations accumulated so far (first-write order, final
    /// values).
    pub fn live_outs(&self) -> &[(Loc, u64)] {
        &self.outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::OpClass;

    fn di(pc: u32, reads: &[(Loc, u64)], writes: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);
    const R3: Loc = Loc::IntReg(3);

    #[test]
    fn live_in_excludes_internally_produced_values() {
        let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
        // r2 = r1 + 1; r3 = r2 + 1  →  live-in {r1}, live-out {r2, r3}.
        assert!(acc.try_add(&di(0, &[(R1, 10)], &[(R2, 11)])));
        assert!(acc.try_add(&di(1, &[(R2, 11)], &[(R3, 12)])));
        let rec = acc.finalize().unwrap();
        assert_eq!(rec.ins.as_ref(), &[(R1, 10)]);
        assert_eq!(rec.outs.as_ref(), &[(R2, 11), (R3, 12)]);
        assert_eq!(rec.start_pc, 0);
        assert_eq!(rec.next_pc, 2);
        assert_eq!(rec.len, 2);
    }

    #[test]
    fn live_in_records_first_value_read() {
        let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
        // Read r1 (=5), write r1, read r1 again (=6): live-in value is 5.
        assert!(acc.try_add(&di(0, &[(R1, 5)], &[(R1, 6)])));
        assert!(acc.try_add(&di(1, &[(R1, 6)], &[(R2, 7)])));
        let rec = acc.finalize().unwrap();
        assert_eq!(rec.ins.as_ref(), &[(R1, 5)]);
        assert_eq!(rec.outs.as_ref(), &[(R1, 6), (R2, 7)]);
    }

    #[test]
    fn live_out_keeps_final_value() {
        let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
        assert!(acc.try_add(&di(0, &[], &[(R1, 1)])));
        assert!(acc.try_add(&di(1, &[], &[(R1, 2)])));
        let rec = acc.finalize().unwrap();
        assert_eq!(rec.outs.as_ref(), &[(R1, 2)]);
    }

    #[test]
    fn memory_locations_count_separately() {
        let mut acc = TraceAccum::new(IoCaps {
            reg_in: 8,
            mem_in: 1,
            reg_out: 8,
            mem_out: 8,
        });
        assert!(acc.try_add(&di(0, &[(Loc::Mem(100), 1)], &[(R1, 1)])));
        // Second distinct memory live-in exceeds the cap of 1.
        assert!(!acc.try_add(&di(1, &[(Loc::Mem(101), 2)], &[(R2, 2)])));
        // Accumulator unchanged by the refusal.
        assert_eq!(acc.len(), 1);
        // Re-reading the same memory word is fine (not a new live-in).
        assert!(acc.try_add(&di(1, &[(Loc::Mem(100), 1)], &[(R2, 2)])));
        let rec = acc.finalize().unwrap();
        assert_eq!(rec.mem_ins(), 1);
        assert_eq!(rec.len, 2);
    }

    #[test]
    fn refusal_is_transactional() {
        let caps = IoCaps {
            reg_in: 1,
            mem_in: 0,
            reg_out: 1,
            mem_out: 0,
        };
        let mut acc = TraceAccum::new(caps);
        assert!(acc.try_add(&di(0, &[(R1, 1)], &[(R2, 2)])));
        let before_ins = acc.live_ins().to_vec();
        // Needs a second register live-in (r3): refused.
        assert!(!acc.try_add(&di(1, &[(R3, 3)], &[(R2, 4)])));
        assert_eq!(acc.live_ins(), before_ins.as_slice());
        // A cap-respecting instruction still fits (reads r2 = internal).
        assert!(acc.try_add(&di(1, &[(R2, 2)], &[(R2, 5)])));
    }

    #[test]
    fn finalize_resets() {
        let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
        assert!(acc.try_add(&di(7, &[(R1, 1)], &[(R2, 2)])));
        let rec = acc.finalize().unwrap();
        assert_eq!(rec.start_pc, 7);
        assert!(acc.finalize().is_none());
        assert!(acc.try_add(&di(9, &[(R2, 2)], &[(R1, 3)])));
        let rec2 = acc.finalize().unwrap();
        assert_eq!(rec2.start_pc, 9);
        assert_eq!(rec2.ins.as_ref(), &[(R2, 2)]);
    }

    #[test]
    fn merge_chains_adjacent_traces() {
        // T1: in {r1}, out {r2}; T2: in {r2, r3}, out {r2, r4}.
        let mut mix1 = ClassMix::EMPTY;
        mix1.record(OpClass::IntAlu);
        mix1.record(OpClass::Load);
        let mut mix2 = ClassMix::EMPTY;
        mix2.record(OpClass::IntAlu);
        mix2.record(OpClass::Store);
        mix2.record(OpClass::Branch);
        let t1 = TraceRecord {
            start_pc: 0,
            next_pc: 2,
            len: 2,
            ins: vec![(R1, 1)].into_boxed_slice(),
            outs: vec![(R2, 5)].into_boxed_slice(),
            mix: mix1,
        };
        let t2 = TraceRecord {
            start_pc: 2,
            next_pc: 6,
            len: 3,
            ins: vec![(R2, 5), (R3, 3)].into_boxed_slice(),
            outs: vec![(R2, 9), (Loc::Mem(4), 1)].into_boxed_slice(),
            mix: mix2,
        };
        let m = t1.merge(&t2, &IoCaps::UNLIMITED).unwrap();
        assert_eq!(m.start_pc, 0);
        assert_eq!(m.next_pc, 6);
        assert_eq!(m.len, 5);
        // r2 is produced by t1, so it is NOT a live-in of the merge.
        assert_eq!(m.ins.as_ref(), &[(R1, 1), (R3, 3)]);
        // r2's final value comes from t2.
        assert_eq!(m.outs.as_ref(), &[(R2, 9), (Loc::Mem(4), 1)]);
        // The merged mix is the lane-wise sum, and still covers `len`.
        assert_eq!(m.mix, mix1.sum(mix2));
        assert_eq!(m.mix.get(OpClass::IntAlu), 2);
        assert_eq!(m.mix.total(), u64::from(m.len));
    }

    #[test]
    fn merge_rejects_non_adjacent() {
        let t1 = TraceRecord {
            start_pc: 0,
            next_pc: 2,
            len: 1,
            ins: Box::new([]),
            outs: Box::new([]),
            mix: ClassMix::EMPTY,
        };
        let t2 = TraceRecord {
            start_pc: 3,
            next_pc: 4,
            len: 1,
            ins: Box::new([]),
            outs: Box::new([]),
            mix: ClassMix::EMPTY,
        };
        assert_eq!(t1.merge(&t2, &IoCaps::UNLIMITED), None);
    }

    #[test]
    fn merge_respects_caps() {
        let t1 = TraceRecord {
            start_pc: 0,
            next_pc: 1,
            len: 1,
            ins: vec![(R1, 1)].into_boxed_slice(),
            outs: vec![(R2, 2)].into_boxed_slice(),
            mix: ClassMix::EMPTY,
        };
        let t2 = TraceRecord {
            start_pc: 1,
            next_pc: 2,
            len: 1,
            ins: vec![(R3, 3)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(4), 4)].into_boxed_slice(),
            mix: ClassMix::EMPTY,
        };
        let tight = IoCaps {
            reg_in: 1,
            mem_in: 0,
            reg_out: 2,
            mem_out: 0,
        };
        assert_eq!(t1.merge(&t2, &tight), None);
        let loose = IoCaps {
            reg_in: 2,
            mem_in: 0,
            reg_out: 2,
            mem_out: 0,
        };
        assert!(t1.merge(&t2, &loose).is_some());
    }

    #[test]
    fn accum_counts_class_mix() {
        let mut acc = TraceAccum::new(IoCaps::UNLIMITED);
        let mut load = di(0, &[(Loc::Mem(8), 1)], &[(R1, 1)]);
        load.class = OpClass::Load;
        assert!(acc.try_add(&load));
        assert!(acc.try_add(&di(1, &[(R1, 1)], &[(R2, 2)])));
        let rec = acc.finalize().unwrap();
        assert_eq!(rec.mix.get(OpClass::Load), 1);
        assert_eq!(rec.mix.get(OpClass::IntAlu), 1);
        assert_eq!(rec.mix.total(), u64::from(rec.len));
        // finalize resets the mix along with everything else.
        assert!(acc.try_add(&di(5, &[(R2, 2)], &[(R3, 3)])));
        let rec2 = acc.finalize().unwrap();
        assert_eq!(rec2.mix.total(), 1);
        assert_eq!(rec2.mix.get(OpClass::Load), 0);
    }

    #[test]
    fn identity_and_hash_ignore_mix() {
        use std::hash::{BuildHasher, RandomState};
        let base = TraceRecord {
            start_pc: 0,
            next_pc: 1,
            len: 1,
            ins: vec![(R1, 1)].into_boxed_slice(),
            outs: vec![(R2, 2)].into_boxed_slice(),
            mix: ClassMix::EMPTY,
        };
        let mut with_mix = base.clone();
        with_mix.mix.record(OpClass::IntAlu);
        // A zero-mix record (e.g. from an old snapshot) and the same
        // trace freshly collected are the *same* trace.
        assert_eq!(base, with_mix);
        let s = RandomState::new();
        assert_eq!(s.hash_one(&base), s.hash_one(&with_mix));
        // But a different trace is still unequal.
        let mut other = base.clone();
        other.len = 2;
        assert_ne!(base, other);
    }

    #[test]
    fn paper_caps_shape() {
        assert_eq!(IoCaps::PAPER.reg_in, 8);
        assert_eq!(IoCaps::PAPER.mem_in, 4);
    }
}
