#![warn(missing_docs)]
//! # tlr-core — Trace-Level Reuse
//!
//! Reproduction of the central mechanism of *"Trace-Level Reuse"*
//! (A. González, J. Tubella, C. Molina — ICPP 1999): skipping the fetch
//! and execution of whole dynamic instruction sequences whose inputs
//! match a recorded previous execution.
//!
//! ## Map of the crate
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`ilr`] | §2, §4.2 | instruction-level reusability: infinite table and finite set-associative buffer |
//! | [`trace`] | §3.1 | live-in / live-out computation, I/O caps, trace records, merging (expansion) |
//! | [`rtm`] | §3.1, §4.6 | the Reuse Trace Memory: PC-indexed, set-associative |
//! | [`policy`] | ours | pluggable RTM replacement policies + per-trace provenance |
//! | [`collect`] | §3.2, §4.6 | dynamic trace collection heuristics: `ILR NE`, `ILR EXP`, `I(n) EXP` |
//! | [`engine`] | §3.3, §4.6 | the execution-driven reuse engine behind Figure 9 |
//! | [`block`] | ours | straight-line trace blocks: an RTM entry pre-validated and flattened for the fast path |
//! | [`fast`] | ours | the throughput engine: reference semantics on the predecoded/block-served fast substrate |
//! | [`valid_bit`] | §3.3 | the valid-bit + invalidation reuse test (the paper's "simpler" alternative) |
//! | [`schemes`] | §2 | Sodani & Sohi's Sv / Sn instruction-reuse buffer schemes |
//! | [`limits`] | §4.2–§4.5 | the infinite-history limit studies behind Figures 3–8 |
//! | [`theorems`] | §4.4, appendix | executable Theorems 1–4 |
//!
//! ## Quick start
//!
//! ```
//! use tlr_asm::assemble;
//! use tlr_core::{EngineConfig, Heuristic, RtmConfig, TraceReuseEngine};
//!
//! let program = assemble(
//!     r#"
//!         .org 0x100
//! tab:    .word 2, 4, 6, 8
//!         li      r9, 50
//! outer:  li      r1, tab
//!         li      r2, 4
//!         li      r5, 0
//! inner:  ldq     r3, 0(r1)
//!         addq    r5, r5, r3
//!         addq    r1, r1, 1
//!         subq    r2, r2, 1
//!         bnez    r2, inner
//!         stq     r5, 64(zero)
//!         subq    r9, r9, 1
//!         bnez    r9, outer
//!         halt
//!     "#,
//! )
//! .unwrap();
//!
//! let mut engine = TraceReuseEngine::new(
//!     &program,
//!     EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
//! );
//! let stats = engine.run(100_000).unwrap();
//! assert!(stats.halted);
//! assert!(stats.pct_reused() > 10.0);
//! ```

pub mod block;
pub mod collect;
pub mod engine;
pub mod fast;
pub mod ilr;
pub mod limits;
pub mod policy;
pub mod rtm;
pub mod schemes;
pub mod theorems;
pub mod trace;
pub mod valid_bit;

pub use block::TraceBlock;
pub use collect::{CollectStats, Collector, Heuristic};
pub use engine::{
    run_engine, DecisionLog, EngineConfig, EngineStats, ReuseEvent, ReuseTest, TraceReuseEngine,
};
pub use fast::ThroughputEngine;
pub use ilr::{FiniteIlrBuffer, InstrReuseTable, SetAssocGeometry};
pub use limits::{LatencyRule, LimitConfig, LimitResult, LimitStudySink, TraceIoStats};
pub use policy::{ClassWeights, ReplacementPolicy, TraceMeta, LFU_HALF_LIFE};
pub use rtm::{
    FastHit, MergeError, MergeOutcome, ReuseBackend, ReuseTraceMemory, RtmConfig, RtmSnapshot,
    RtmStats,
};
pub use schemes::{compare_schemes, SchemeComparison, SnBuffer, SvBuffer};
pub use theorems::{check_theorem1, check_theorem3, theorem2_counterexample, TheoremCheck};
pub use trace::{IoCaps, TraceAccum, TraceKey, TraceRecord};
pub use valid_bit::InvalidatingRtm;
