//! Straight-line trace blocks — the fast-path form of an RTM entry.
//!
//! The reference engine probes the RTM through a `Fn(Loc) -> u64` closure
//! and, on a hit, clones the whole [`TraceRecord`] before applying its
//! outputs through [`Vm::apply_trace`]'s per-location dispatch. That is
//! faithful to §3.3 but pays enum matching and a heap clone on the
//! hottest path of the whole simulator.
//!
//! A [`TraceBlock`] is the same trace *pre-validated and flattened*: the
//! live-in check list and live-out write list split by storage class
//! (integer registers, FP registers, memory words), the zero-register
//! cases resolved once at build time, and the recorded next PC checked
//! against the program bounds once instead of per application — the
//! trace-level analogue of a JIT'd superblock. Blocks are cached lazily
//! per RTM entry and discarded whenever the underlying record changes
//! (conflict replacement, merge, eviction), so they can never serve
//! stale state.

use tlr_isa::{ClassMix, Loc};
use tlr_vm::Vm;

use crate::trace::TraceRecord;

/// A [`TraceRecord`] compiled into flat check/apply lists against a
/// specific program length. Build with [`TraceBlock::build`]; probe with
/// [`TraceBlock::matches`]; commit with [`TraceBlock::apply`].
#[derive(Clone, Debug)]
pub struct TraceBlock {
    next_pc: u32,
    len: u32,
    mix: ClassMix,
    /// `next_pc` is inside the program (checked once at build).
    next_pc_ok: bool,
    /// `false` when a live-in can never match current state (a recorded
    /// nonzero read of the hardwired zero register).
    matchable: bool,
    ireg_ins: Box<[(u8, u64)]>,
    freg_ins: Box<[(u8, u64)]>,
    mem_ins: Box<[(u64, u64)]>,
    ireg_outs: Box<[(u8, u64)]>,
    freg_outs: Box<[(u8, u64)]>,
    mem_outs: Box<[(u64, u64)]>,
}

impl TraceBlock {
    /// Flatten `rec` against a program of `code_len` instructions.
    ///
    /// Zero-register semantics are resolved here, mirroring what
    /// [`Vm::peek_loc`] / [`Vm::poke_loc`] would do per access: a
    /// recorded live-in of `r31`/`f31` with value zero is always
    /// satisfied (dropped from the check list), with a nonzero value is
    /// never satisfied (the block is marked unmatchable), and outputs to
    /// `r31`/`f31` are discarded.
    pub fn build(rec: &TraceRecord, code_len: usize) -> TraceBlock {
        let mut matchable = true;
        let mut ireg_ins = Vec::new();
        let mut freg_ins = Vec::new();
        let mut mem_ins = Vec::new();
        for &(loc, value) in rec.ins.iter() {
            match loc {
                Loc::IntReg(31) | Loc::FpReg(31) => {
                    if value != 0 {
                        matchable = false;
                    }
                }
                Loc::IntReg(n) => ireg_ins.push((n, value)),
                Loc::FpReg(n) => freg_ins.push((n, value)),
                Loc::Mem(addr) => mem_ins.push((addr, value)),
            }
        }
        let mut ireg_outs = Vec::new();
        let mut freg_outs = Vec::new();
        let mut mem_outs = Vec::new();
        for &(loc, value) in rec.outs.iter() {
            match loc {
                Loc::IntReg(31) | Loc::FpReg(31) => {}
                Loc::IntReg(n) => ireg_outs.push((n, value)),
                Loc::FpReg(n) => freg_outs.push((n, value)),
                Loc::Mem(addr) => mem_outs.push((addr, value)),
            }
        }
        TraceBlock {
            next_pc: rec.next_pc,
            len: rec.len,
            mix: rec.mix,
            next_pc_ok: (rec.next_pc as usize) < code_len,
            matchable,
            ireg_ins: ireg_ins.into_boxed_slice(),
            freg_ins: freg_ins.into_boxed_slice(),
            mem_ins: mem_ins.into_boxed_slice(),
            ireg_outs: ireg_outs.into_boxed_slice(),
            freg_outs: freg_outs.into_boxed_slice(),
            mem_outs: mem_outs.into_boxed_slice(),
        }
    }

    /// The reuse test: do all live-ins match current architectural
    /// state? Flat slice scans — no closure, no `Loc` dispatch.
    #[inline]
    pub fn matches(&self, vm: &Vm) -> bool {
        self.matchable
            && self
                .ireg_ins
                .iter()
                .all(|&(n, v)| vm.iregs()[n as usize] == v)
            && self
                .freg_ins
                .iter()
                .all(|&(n, v)| vm.fregs()[n as usize].to_bits() == v)
            && self.mem_ins.iter().all(|&(a, v)| vm.memory().read(a) == v)
    }

    /// Commit the trace: write every live-out and jump to the recorded
    /// next PC. Callers must have checked [`TraceBlock::pre_validated`];
    /// this is the unchecked-apply half of what [`Vm::apply_trace`] does.
    #[inline]
    pub fn apply(&self, vm: &mut Vm) {
        debug_assert!(self.next_pc_ok);
        for &(n, v) in self.ireg_outs.iter() {
            vm.iregs_mut()[n as usize] = v;
        }
        for &(n, v) in self.freg_outs.iter() {
            vm.fregs_mut()[n as usize] = f64::from_bits(v);
        }
        for &(a, v) in self.mem_outs.iter() {
            vm.memory_mut().write(a, v);
        }
        vm.set_pc(self.next_pc);
    }

    /// Whether the recorded next PC was inside the program at build time.
    /// A matching block that fails this check must surface the same
    /// [`tlr_vm::VmError::BadJumpTarget`] the reference path would.
    #[inline]
    pub fn pre_validated(&self) -> bool {
        self.next_pc_ok
    }

    /// Where control resumes after the block.
    #[inline]
    pub fn next_pc(&self) -> u32 {
        self.next_pc
    }

    /// Dynamic instructions the block covers.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` for a degenerate zero-length block.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-class histogram of the covered instructions.
    #[inline]
    pub fn mix(&self) -> ClassMix {
        self.mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;

    fn rec(ins: &[(Loc, u64)], outs: &[(Loc, u64)], next_pc: u32) -> TraceRecord {
        TraceRecord {
            start_pc: 0,
            next_pc,
            len: 3,
            ins: ins.to_vec().into_boxed_slice(),
            outs: outs.to_vec().into_boxed_slice(),
            mix: ClassMix::default(),
        }
    }

    fn vm() -> Vm {
        Vm::new(&assemble("nop\nnop\nnop\nhalt\n").unwrap())
    }

    #[test]
    fn matches_and_applies_like_the_reference_path() {
        let mut vm = vm();
        vm.poke_loc(Loc::IntReg(3), 7);
        vm.poke_loc(Loc::FpReg(1), 1.5f64.to_bits());
        vm.poke_loc(Loc::Mem(100), 42);
        let r = rec(
            &[
                (Loc::IntReg(3), 7),
                (Loc::FpReg(1), 1.5f64.to_bits()),
                (Loc::Mem(100), 42),
            ],
            &[
                (Loc::IntReg(4), 9),
                (Loc::FpReg(2), 2.5f64.to_bits()),
                (Loc::Mem(101), 11),
            ],
            3,
        );
        let block = TraceBlock::build(&r, vm.code_len());
        assert!(block.pre_validated());
        assert!(block.matches(&vm));
        assert_eq!(block.len(), 3);
        assert!(!block.is_empty());

        // Reference path on a twin VM.
        let mut reference = self::vm();
        reference.poke_loc(Loc::IntReg(3), 7);
        reference.poke_loc(Loc::FpReg(1), 1.5f64.to_bits());
        reference.poke_loc(Loc::Mem(100), 42);
        reference
            .apply_trace(r.outs.iter().copied(), r.next_pc)
            .unwrap();

        block.apply(&mut vm);
        assert_eq!(vm.pc(), 3);
        assert_eq!(vm.state_digest(), reference.state_digest());

        // A changed live-in stops the block from matching.
        vm.poke_loc(Loc::IntReg(3), 8);
        assert!(!block.matches(&vm));
    }

    #[test]
    fn zero_register_semantics_resolved_at_build() {
        let vm = vm();
        // r31 live-in of zero is vacuously satisfied; outputs to r31/f31
        // are discarded.
        let ok = rec(
            &[(Loc::IntReg(31), 0), (Loc::FpReg(31), 0)],
            &[(Loc::IntReg(31), 5), (Loc::FpReg(31), 5)],
            1,
        );
        let block = TraceBlock::build(&ok, vm.code_len());
        assert!(block.matches(&vm));
        let mut vm2 = self::vm();
        block.apply(&mut vm2);
        assert_eq!(vm2.peek_loc(Loc::IntReg(31)), 0);
        assert_eq!(vm2.peek_loc(Loc::FpReg(31)), 0);

        // A nonzero r31 live-in can never match (peek_loc reads 0).
        let never = rec(&[(Loc::IntReg(31), 3)], &[], 1);
        assert!(!TraceBlock::build(&never, vm.code_len()).matches(&vm));
    }

    #[test]
    fn out_of_range_next_pc_fails_pre_validation() {
        let r = rec(&[], &[], 99);
        let block = TraceBlock::build(&r, 4);
        assert!(!block.pre_validated());
        // In-range boundary: pc == code_len is out of range.
        assert!(!TraceBlock::build(&rec(&[], &[], 4), 4).pre_validated());
        assert!(TraceBlock::build(&rec(&[], &[], 3), 4).pre_validated());
    }
}
