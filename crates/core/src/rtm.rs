//! The Reuse Trace Memory (§3.1, §4.6).
//!
//! A set-associative memory indexed by the least-significant bits of the
//! PC. Each set holds several PC groups; each group holds several traces
//! starting at that PC (the paper's "N entries per initial PC"), replaced
//! LRU. An entry stores the trace's input identifiers+contents, output
//! identifiers+contents and next PC — Figure 1 of the paper.
//!
//! The **reuse test** (§3.3) implemented here is the value-comparison
//! variant: on every fetch, each candidate trace for the current PC is
//! checked by reading the current contents of all its input locations and
//! comparing against the recorded values. (The paper's alternative — a
//! valid bit invalidated on every write — trades test latency for
//! invalidation traffic; Figure 8b models its cost as reuse latency
//! proportional to the trace I/O count, which `tlr-core::limits` covers.)

use crate::block::TraceBlock;
use crate::ilr::{lru_group_victim, PcGroup, SetAssocGeometry, SetAssocStore};
use crate::policy::{ReplacementPolicy, TraceMeta};
use crate::trace::TraceRecord;
use tlr_isa::{ClassMix, Loc};
use tlr_util::FxHashSet;
use tlr_vm::{Vm, VmError};

/// RTM configuration: geometry is the paper's, I/O caps are enforced at
/// collection time (see [`crate::trace::IoCaps`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtmConfig {
    /// Set-associative geometry.
    pub geometry: SetAssocGeometry,
}

impl RtmConfig {
    /// 512-entry RTM: 32 sets × 4 ways × 4 traces per PC (§4.6: "4-way
    /// set-associative memory (5-bit index) with 4 entries per initial
    /// PC").
    pub const RTM_512: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 32,
            ways: 4,
            per_pc: 4,
        },
    };

    /// 4K-entry RTM: 128 sets × 4 ways × 8 traces per PC.
    pub const RTM_4K: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 128,
            ways: 4,
            per_pc: 8,
        },
    };

    /// 32K-entry RTM: 256 sets × 8 ways × 16 traces per PC.
    pub const RTM_32K: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 256,
            ways: 8,
            per_pc: 16,
        },
    };

    /// 256K-entry RTM: 2048 sets × 8 ways × 16 traces per PC.
    pub const RTM_256K: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 2048,
            ways: 8,
            per_pc: 16,
        },
    };

    /// The four capacities evaluated in Figure 9, ascending.
    pub const PAPER_SWEEP: [RtmConfig; 4] = [
        RtmConfig::RTM_512,
        RtmConfig::RTM_4K,
        RtmConfig::RTM_32K,
        RtmConfig::RTM_256K,
    ];

    /// Total trace capacity.
    pub fn capacity(&self) -> u64 {
        self.geometry.capacity()
    }

    /// Human-readable capacity label ("512", "4K", ...).
    pub fn label(&self) -> String {
        let c = self.capacity();
        if c.is_multiple_of(1024) {
            format!("{}K", c / 1024)
        } else {
            format!("{c}")
        }
    }
}

/// Counters for RTM behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtmStats {
    /// Reuse tests performed (one per fetch of a PC with resident traces
    /// counts per candidate-set probe; misses on empty groups count too).
    pub lookups: u64,
    /// Successful reuse tests.
    pub hits: u64,
    /// Traces stored.
    pub stores: u64,
    /// Traces rejected as duplicates of a resident entry.
    pub duplicate_stores: u64,
    /// Stores whose reuse key (start PC, live-ins, length) matched a
    /// resident entry but whose outputs or next PC disagreed. Impossible
    /// under deterministic execution of a single program; observed when
    /// snapshots from different program versions (or a buggy producer)
    /// are merged. The resident entry is replaced by the newer record.
    pub conflicting_stores: u64,
    /// Entries evicted (either level, victim chosen by the configured
    /// [`ReplacementPolicy`]).
    pub evictions: u64,
    /// Candidate traces whose starting PC matched a lookup but whose
    /// live-in *values* failed the reuse test. This is the
    /// validation-at-reuse invariant doing its job: shape-shared state
    /// (same code, different data) parks traces in the RTM that only
    /// apply when the values line up, and every rejection lands here
    /// instead of passing silently as a generic miss.
    pub value_rejects: u64,
}

/// One resident RTM entry: the trace plus its provenance, plus a lazily
/// built straight-line [`TraceBlock`] serving the fast lookup path. The
/// block is pure derived state: it is built from `rec` on first fast
/// lookup and dropped whenever `rec` changes (conflict replacement, mix
/// upgrade) or the entry is evicted, so it can never go stale.
#[derive(Clone, Debug)]
pub(crate) struct RtmEntry {
    pub(crate) rec: TraceRecord,
    pub(crate) meta: TraceMeta,
    pub(crate) block: Option<Box<TraceBlock>>,
}

impl PartialEq for RtmEntry {
    /// Identity is the trace and its provenance; the cached block is
    /// derived state and never participates.
    fn eq(&self, other: &Self) -> bool {
        self.rec == other.rec && self.meta == other.meta
    }
}

/// What [`ReuseTraceMemory::lookup_fast`] hands the engine on a hit: the
/// bookkeeping fields of the reused trace (the architectural update has
/// already been applied to the VM), plus the full record only when the
/// caller asked for it (a collector needs it to drive expansion; a
/// serving-only engine skips the clone entirely).
#[derive(Clone, Debug)]
pub struct FastHit {
    /// Dynamic instructions the trace covered.
    pub len: u32,
    /// Where control resumed.
    pub next_pc: u32,
    /// Per-class histogram of the skipped instructions.
    pub mix: ClassMix,
    /// The reused record, cloned only when requested via `want_record`.
    pub rec: Option<TraceRecord>,
}

/// A reuse-test mechanism behind the engine: either the full
/// value-comparison RTM ([`ReuseTraceMemory`]) or the §3.3 valid-bit
/// variant ([`crate::valid_bit::InvalidatingRtm`]).
pub trait ReuseBackend {
    /// The reuse test at a fetch point: return a trace starting at `pc`
    /// that is guaranteed to reproduce execution from the current state.
    fn lookup(&mut self, pc: u32, state: &dyn Fn(Loc) -> u64) -> Option<TraceRecord>;

    /// Store a collected trace. `state` reads the architectural value of
    /// a location *at store time* (valid-bit backends need it to detect
    /// self-clobbered inputs; the value-comparison backend ignores it).
    fn insert(&mut self, rec: TraceRecord, state: &dyn Fn(Loc) -> u64);

    /// Notify an architectural write (valid-bit backends invalidate
    /// matching entries; the value-comparison backend does nothing).
    fn on_write(&mut self, loc: Loc);

    /// Stamp a run id into the provenance of subsequently collected
    /// traces. Backends without provenance ignore it.
    fn set_source_run(&mut self, _run: u64) {}

    /// Behaviour counters.
    fn stats(&self) -> RtmStats;

    /// Entries resident.
    fn resident(&self) -> u64;

    /// Export resident traces for persistence, if this backend supports
    /// snapshotting (only the value-comparison RTM does: valid-bit
    /// entries are tied to invalidation state that cannot outlive the
    /// run).
    fn snapshot(&self) -> Option<RtmSnapshot> {
        None
    }
}

/// A portable snapshot of an RTM's resident traces.
///
/// Produced by [`ReuseTraceMemory::export`] and consumed by
/// [`ReuseTraceMemory::import`] to warm-start a later run from a prior
/// run's reuse state (serialized to disk by `tlr-persist`). Traces are
/// ordered so that re-inserting them into an empty RTM of the same
/// geometry reproduces the exporter's LRU replacement state.
#[derive(Clone, Debug, PartialEq)]
pub struct RtmSnapshot {
    /// Geometry the snapshot was taken under.
    pub config: RtmConfig,
    /// Resident traces, LRU-first per set.
    pub traces: Vec<TraceRecord>,
    /// Per-trace provenance, parallel to `traces`. Snapshots from
    /// format-v2 files (or hand-built without history) carry all-zero
    /// provenance; [`RtmSnapshot::from_traces`] fills that in.
    pub meta: Vec<TraceMeta>,
    /// The producing program's *shape fingerprint*
    /// (`tlr_persist::program_shape_fingerprint`): a hash of the code
    /// alone, with the data image excluded — so runs of the same program
    /// over different data agree on it and can share this snapshot,
    /// value-validated at reuse time. `0` means value-pinned/unknown
    /// (exports before a producer stamps it, snapshots loaded from
    /// pre-v6 files, merges of conflicting shapes).
    pub shape: u64,
}

impl RtmSnapshot {
    /// A snapshot over `traces` with zero provenance (no recorded hits,
    /// no source run) — what loading a pre-provenance (v2) snapshot
    /// produces.
    pub fn from_traces(config: RtmConfig, traces: Vec<TraceRecord>) -> Self {
        let meta = vec![TraceMeta::default(); traces.len()];
        Self {
            config,
            traces,
            meta,
            shape: 0,
        }
    }

    /// Number of traces captured.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when the snapshot holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Traces zipped with their provenance. Hand-built snapshots whose
    /// `meta` is shorter than `traces` yield zero provenance for the
    /// tail rather than truncating.
    pub fn entries(&self) -> impl Iterator<Item = (&TraceRecord, TraceMeta)> {
        self.traces
            .iter()
            .enumerate()
            .map(|(i, t)| (t, self.meta.get(i).copied().unwrap_or_default()))
    }

    /// Sum of recorded per-trace hit counts — the snapshot's
    /// hit-weighted residency.
    pub fn total_hits(&self) -> u64 {
        self.meta
            .iter()
            .fold(0, |acc, m| acc.saturating_add(m.hits))
    }

    /// Union several runs' snapshots into one (the substrate of a
    /// serving fleet pooling reuse state).
    ///
    /// All inputs must share one geometry; the merge replays the
    /// inputs' traces **interleaved round-robin from their LRU ends**
    /// (each input is ordered LRU-first) into an empty RTM of that
    /// geometry. Capacity is enforced by the RTM's own two-level LRU
    /// replacement, and recency priority falls out of the replay order:
    /// a trace present in several inputs is refreshed to MRU on each
    /// re-encounter and outlives single-input traces under capacity
    /// pressure; within a round, later inputs rank ahead, so list the
    /// freshest run last; and an input with more traces keeps
    /// contributing after shorter inputs are exhausted, so under
    /// contention the largest input's hot tail ends up MRU-most —
    /// unlike a sequential replay, though, no input can wholesale-evict
    /// the others' PC groups with its *cold* end, because every input's
    /// early (LRU) traces land early. Conflicting records (same
    /// live-ins and length, different
    /// outputs — different program versions or a buggy producer) are
    /// resolved newest-wins and counted, see
    /// [`RtmStats::conflicting_stores`].
    ///
    /// Traces **every** input kept — the pooled fleet's unanimous, and
    /// so hottest, reuse state — are re-asserted in a final pass, which
    /// makes them MRU-most and guarantees capacity contention never
    /// drops one: per set, unanimous PC groups number at most `ways`
    /// (each input held them simultaneously) and unanimous traces per
    /// group at most `per_pc`, so the pass only ever evicts
    /// non-unanimous state.
    pub fn merge(snapshots: &[RtmSnapshot]) -> Result<RtmSnapshot, MergeError> {
        Ok(Self::merge_detailed(snapshots)?.snapshot)
    }

    /// [`merge`](RtmSnapshot::merge) under an explicit replacement
    /// policy (see [`merge_detailed_with`](RtmSnapshot::merge_detailed_with)).
    pub fn merge_with(
        snapshots: &[RtmSnapshot],
        policy: ReplacementPolicy,
    ) -> Result<RtmSnapshot, MergeError> {
        Ok(Self::merge_detailed_with(snapshots, policy)?.snapshot)
    }

    /// [`merge`](RtmSnapshot::merge), also reporting what the union did:
    /// input trace count, duplicates coalesced, conflicts resolved, and
    /// entries lost to capacity.
    pub fn merge_detailed(snapshots: &[RtmSnapshot]) -> Result<MergeOutcome, MergeError> {
        Self::merge_detailed_with(snapshots, ReplacementPolicy::Lru)
    }

    /// [`merge_detailed`](RtmSnapshot::merge_detailed) under an explicit
    /// replacement policy — the provenance-aware merge.
    ///
    /// The replay order is the same interleaved LRU→MRU round-robin for
    /// every policy; what changes is the *victim rule* under capacity
    /// contention, and what a re-encounter does: a trace present in
    /// several inputs **absorbs** each sighting's provenance (hit counts
    /// add, the freshest last-use wins, the first contributor's
    /// source-run id is kept), so under [`ReplacementPolicy::Lfu`] /
    /// [`ReplacementPolicy::CostBenefit`] the fleet-wide hottest traces
    /// outrank single-run state by their *combined* history rather than
    /// by replay recency alone.
    ///
    /// The unanimity guarantee holds under every policy: traces that
    /// **all** inputs kept are re-asserted in a final pass whose victim
    /// selection is forbidden from evicting unanimous state. The
    /// counting argument of [`merge`](RtmSnapshot::merge) shows a
    /// non-unanimous victim always exists when that pass needs one, so
    /// the restriction never wedges.
    pub fn merge_detailed_with(
        snapshots: &[RtmSnapshot],
        policy: ReplacementPolicy,
    ) -> Result<MergeOutcome, MergeError> {
        Self::merge_detailed_tuned(snapshots, policy, crate::policy::LFU_HALF_LIFE)
    }

    /// [`merge_detailed_with`](RtmSnapshot::merge_detailed_with) under a
    /// caller-chosen LFU aging half-life (the `--lfu-half-life` knob;
    /// only [`ReplacementPolicy::Lfu`] victim selection consults it).
    pub fn merge_detailed_tuned(
        snapshots: &[RtmSnapshot],
        policy: ReplacementPolicy,
        lfu_half_life: u64,
    ) -> Result<MergeOutcome, MergeError> {
        let first = snapshots.first().ok_or(MergeError::Empty)?;
        for s in &snapshots[1..] {
            if s.config != first.config {
                return Err(MergeError::GeometryMismatch {
                    first: first.config,
                    other: s.config,
                });
            }
        }
        let mut rtm =
            ReuseTraceMemory::new_with(first.config, policy).with_lfu_half_life(lfu_half_life);
        let input_traces: usize = snapshots.iter().map(|s| s.traces.len()).sum();
        let mut iters: Vec<_> = snapshots.iter().map(|s| s.entries()).collect();
        loop {
            let mut exhausted = true;
            for it in iters.iter_mut() {
                if let Some((trace, meta)) = it.next() {
                    rtm.insert_seeded(trace.clone(), meta);
                    exhausted = false;
                }
            }
            if exhausted {
                break;
            }
        }
        // Duplicate/conflict counts describe the union itself; take them
        // before the unanimity pass re-encounters records a second time.
        let union_stats = rtm.stats();
        if snapshots.len() > 1 {
            // Count per input (an input's export never repeats a record,
            // but hand-built snapshots might — count each input once).
            let mut seen: tlr_util::FxHashMap<&TraceRecord, (usize, usize)> =
                tlr_util::FxHashMap::default();
            for (input, snap) in snapshots.iter().enumerate() {
                for trace in &snap.traces {
                    let entry = seen.entry(trace).or_insert((0, usize::MAX));
                    if entry.1 != input {
                        *entry = (entry.0 + 1, input);
                    }
                }
            }
            let unanimous: FxHashSet<TraceRecord> = first
                .traces
                .iter()
                .filter(|t| seen.get(*t).is_some_and(|(n, _)| *n == snapshots.len()))
                .cloned()
                .collect();
            // Combined provenance of each unanimous trace across every
            // input, in case the union replay evicted it and the
            // re-assert has to insert it from scratch.
            let mut combined: tlr_util::FxHashMap<&TraceRecord, TraceMeta> =
                tlr_util::FxHashMap::default();
            for snap in snapshots {
                for (trace, meta) in snap.entries() {
                    if !unanimous.contains(trace) {
                        continue;
                    }
                    match combined.entry(trace) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().absorb(&meta)
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(meta);
                        }
                    }
                }
            }
            // Every unanimous trace appears in the first input; re-assert
            // in its order so relative recency among them is stable. The
            // pass refreshes recency only — resident provenance was
            // already absorbed during the union replay.
            for trace in &first.traces {
                if unanimous.contains(trace) {
                    let meta = combined.get(trace).copied().unwrap_or_default();
                    rtm.insert_pinned(trace.clone(), meta, &unanimous);
                }
            }
        }
        // The merge keeps a shape only when every shape-stamped input
        // agrees on it; value-pinned inputs (shape 0) never veto, and a
        // genuine conflict demotes the result to value-pinned rather
        // than mislabelling it.
        let mut shape = 0u64;
        let mut conflict = false;
        for s in snapshots {
            if s.shape == 0 {
                continue;
            }
            if shape == 0 {
                shape = s.shape;
            } else if shape != s.shape {
                conflict = true;
            }
        }
        let mut snapshot = rtm.export();
        snapshot.shape = if conflict { 0 } else { shape };
        Ok(MergeOutcome {
            snapshot,
            input_traces,
            duplicates: union_stats.duplicate_stores,
            conflicts: union_stats.conflicting_stores,
            evictions: rtm.stats().evictions,
        })
    }
}

/// Why a set of snapshots cannot be merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No snapshots were given.
    Empty,
    /// The inputs disagree on RTM geometry. Merging across geometries
    /// would silently re-shape one run's replacement state; re-export
    /// under a common geometry instead.
    GeometryMismatch {
        /// Geometry of the first input.
        first: RtmConfig,
        /// The first disagreeing geometry.
        other: RtmConfig,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "cannot merge zero snapshots"),
            MergeError::GeometryMismatch { first, other } => write!(
                f,
                "snapshot geometries differ: {:?} vs {:?}; merge inputs must share one RTM geometry",
                first.geometry, other.geometry
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// What [`RtmSnapshot::merge_detailed`] produced.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The merged snapshot.
    pub snapshot: RtmSnapshot,
    /// Total traces across all inputs.
    pub input_traces: usize,
    /// Input traces coalesced as exact duplicates of an earlier one.
    pub duplicates: u64,
    /// Conflicting records resolved newest-wins.
    pub conflicts: u64,
    /// Entries lost to capacity (LRU, either level).
    pub evictions: u64,
}

/// The Reuse Trace Memory.
pub struct ReuseTraceMemory {
    store: SetAssocStore<RtmEntry>,
    stats: RtmStats,
    policy: ReplacementPolicy,
    /// Monotonic use counter stamped into per-entry provenance
    /// ([`TraceMeta::last_use`]).
    tick: u64,
    /// Run id stamped into fresh inserts' provenance.
    source_run: u64,
    /// Aging half-life for [`ReplacementPolicy::Lfu`] victim selection,
    /// in RTM ticks ([`crate::policy::LFU_HALF_LIFE`] by default).
    lfu_half_life: u64,
}

/// Pick the entry to evict from a full PC group (entries in LRU→MRU
/// order), honouring `policy` and never choosing a `pinned` record when
/// an unpinned candidate exists. `now` is the RTM tick the LFU aging
/// term measures idleness against, and `half_life` its aging rate
/// ([`TraceMeta::decayed_hits_with`]).
fn entry_victim(
    policy: ReplacementPolicy,
    entries: &[RtmEntry],
    pinned: Option<&FxHashSet<TraceRecord>>,
    now: u64,
    half_life: u64,
) -> usize {
    let mut candidates = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| pinned.is_none_or(|p| !p.contains(&e.rec)));
    match policy {
        // First candidate in LRU→MRU order is the least recently used.
        ReplacementPolicy::Lru => candidates.next().map(|(i, _)| i),
        ReplacementPolicy::Lfu => candidates
            .min_by_key(|(i, e)| {
                (
                    e.meta.decayed_hits_with(now, half_life),
                    e.meta.last_use,
                    *i,
                )
            })
            .map(|(i, _)| i),
        ReplacementPolicy::CostBenefit => candidates
            .min_by_key(|(i, e)| (e.meta.benefit(e.rec.len), e.meta.last_use, *i))
            .map(|(i, _)| i),
        ReplacementPolicy::CostBenefitMeasured(weights) => candidates
            .min_by_key(|(i, e)| {
                (
                    e.meta.benefit_measured(e.rec.len, e.rec.mix, &weights),
                    e.meta.last_use,
                    *i,
                )
            })
            .map(|(i, _)| i),
    }
    .unwrap_or(0)
}

/// Pick the PC group to evict from a full set, honouring `policy` and
/// never choosing a group holding a `pinned` record when an unpinned
/// candidate exists.
fn group_victim(
    policy: ReplacementPolicy,
    groups: &[PcGroup<RtmEntry>],
    pinned: Option<&FxHashSet<TraceRecord>>,
    now: u64,
    half_life: u64,
) -> usize {
    let candidates = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| pinned.is_none_or(|p| !g.entries.iter().any(|e| p.contains(&e.rec))));
    match policy {
        ReplacementPolicy::Lru => candidates.min_by_key(|(_, g)| g.last_touch),
        ReplacementPolicy::Lfu => candidates.min_by_key(|(_, g)| {
            let hits: u64 = g
                .entries
                .iter()
                .map(|e| e.meta.decayed_hits_with(now, half_life))
                .sum();
            (hits, g.last_touch)
        }),
        ReplacementPolicy::CostBenefit => candidates.min_by_key(|(_, g)| {
            let benefit: u128 = g.entries.iter().map(|e| e.meta.benefit(e.rec.len)).sum();
            (benefit, g.last_touch)
        }),
        ReplacementPolicy::CostBenefitMeasured(weights) => candidates.min_by_key(|(_, g)| {
            let benefit: u128 = g
                .entries
                .iter()
                .map(|e| e.meta.benefit_measured(e.rec.len, e.rec.mix, &weights))
                .sum();
            (benefit, g.last_touch)
        }),
    }
    .map(|(i, _)| i)
    .unwrap_or_else(|| lru_group_victim(groups))
}

impl ReuseTraceMemory {
    /// Empty RTM with the given configuration and the paper's LRU
    /// replacement.
    pub fn new(config: RtmConfig) -> Self {
        Self::new_with(config, ReplacementPolicy::Lru)
    }

    /// Empty RTM replacing under an explicit [`ReplacementPolicy`].
    pub fn new_with(config: RtmConfig, policy: ReplacementPolicy) -> Self {
        Self {
            store: SetAssocStore::new(config.geometry),
            stats: RtmStats::default(),
            policy,
            tick: 0,
            source_run: 0,
            lfu_half_life: crate::policy::LFU_HALF_LIFE,
        }
    }

    /// Same RTM with a different LFU aging half-life (in ticks). Only
    /// [`ReplacementPolicy::Lfu`] victim selection consults it.
    pub fn with_lfu_half_life(mut self, half_life: u64) -> Self {
        self.lfu_half_life = half_life;
        self
    }

    /// The replacement policy this RTM evicts under.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Stamp `run` into the provenance of every *subsequent* fresh
    /// insert ([`TraceMeta::source_run`]); seeded/imported entries keep
    /// their original contributor.
    pub fn set_source_run(&mut self, run: u64) {
        self.source_run = run;
    }

    /// Behaviour counters so far.
    pub fn stats(&self) -> RtmStats {
        self.stats
    }

    /// Traces currently resident.
    pub fn resident(&self) -> u64 {
        self.store.resident
    }

    /// The reuse test: find a resident trace starting at `pc` whose
    /// recorded live-in values all equal the current architectural values
    /// (`state(loc)`); most recently used candidates are preferred. On a
    /// hit the entry is touched (MRU), its provenance hit count bumped,
    /// and the record cloned out.
    ///
    /// The state closure is the processor's register file / memory read
    /// port; `tlr_vm::Vm::peek_loc` is the canonical implementation.
    pub fn lookup(&mut self, pc: u32, state: impl Fn(Loc) -> u64) -> Option<TraceRecord> {
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let entries = self.store.group_mut(pc)?;
        // MRU-first: highest index is most recently used. Candidates
        // scanned past are value rejections: right PC, wrong live-ins.
        let mut found = None;
        let mut rejected = 0u64;
        for (idx, e) in entries.iter().enumerate().rev() {
            if e.rec.ins.iter().all(|(loc, val)| state(*loc) == *val) {
                found = Some(idx);
                break;
            }
            rejected += 1;
        }
        self.stats.value_rejects += rejected;
        match found {
            Some(idx) => {
                entries[idx].meta.hits = entries[idx].meta.hits.saturating_add(1);
                entries[idx].meta.last_use = tick;
                let rec = entries[idx].rec.clone();
                self.store.touch(pc, idx);
                self.stats.hits += 1;
                Some(rec)
            }
            None => None,
        }
    }

    /// The fast-path reuse test: identical decision procedure and
    /// bookkeeping to [`ReuseTraceMemory::lookup`], but probing the VM's
    /// register files and memory directly through each candidate's cached
    /// [`TraceBlock`] (built here on first use) and, on a hit, applying
    /// the trace's outputs straight to `vm` — no state closure, no
    /// per-location `Loc` dispatch, and no record clone unless
    /// `want_record` asks for one (a collector needs the record to drive
    /// expansion).
    ///
    /// Mirrors the reference path's error contract: a matching trace
    /// whose recorded next PC falls outside the program returns
    /// [`VmError::BadJumpTarget`] *without* applying any outputs, exactly
    /// as [`Vm::apply_trace`] would after a plain `lookup`, and with the
    /// same hit bookkeeping already performed.
    pub fn lookup_fast(
        &mut self,
        pc: u32,
        vm: &mut Vm,
        want_record: bool,
    ) -> Result<Option<FastHit>, VmError> {
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let code_len = vm.code_len();
        let Some(entries) = self.store.group_mut(pc) else {
            return Ok(None);
        };
        // MRU-first: highest index is most recently used. Candidates
        // scanned past are value rejections: right PC, wrong live-ins.
        let mut found = None;
        let mut rejected = 0u64;
        for (idx, entry) in entries.iter_mut().enumerate().rev() {
            let RtmEntry { rec, block, .. } = entry;
            let matches = match block {
                // A proven trace checks its flat per-class lists.
                Some(b) => b.matches(vm),
                // No block yet (fresh insert or invalidated entry):
                // probe the raw record without allocating. Under
                // collection churn most entries are evicted before they
                // ever match, so blocks are compiled only for traces
                // that prove themselves with a hit.
                None => rec.ins.iter().all(|&(loc, val)| vm.peek_loc(loc) == val),
            };
            if matches {
                block.get_or_insert_with(|| Box::new(TraceBlock::build(rec, code_len)));
                found = Some(idx);
                break;
            }
            rejected += 1;
        }
        self.stats.value_rejects += rejected;
        match found {
            Some(idx) => {
                entries[idx].meta.hits = entries[idx].meta.hits.saturating_add(1);
                entries[idx].meta.last_use = tick;
                let block = entries[idx].block.as_deref().expect("block built above");
                if !block.pre_validated() {
                    let target = block.next_pc() as u64;
                    self.store.touch(pc, idx);
                    self.stats.hits += 1;
                    return Err(VmError::BadJumpTarget {
                        pc: vm.pc(),
                        target,
                    });
                }
                block.apply(vm);
                let hit = FastHit {
                    len: block.len(),
                    next_pc: block.next_pc(),
                    mix: block.mix(),
                    rec: want_record.then(|| entries[idx].rec.clone()),
                };
                self.store.touch(pc, idx);
                self.stats.hits += 1;
                Ok(Some(hit))
            }
            None => Ok(None),
        }
    }

    /// Store a collected trace. A trace **fully identical** to a resident
    /// entry for the same PC is dropped (it adds no coverage) — its entry
    /// is refreshed to MRU instead. A trace whose reuse key (live-ins and
    /// length) matches a resident entry but whose outputs or next PC
    /// differ is a *conflict*: deterministic execution of one program
    /// cannot produce it, so one of the two records is wrong. The newer
    /// record wins — it replaces the resident entry in place — and the
    /// event is counted in [`RtmStats::conflicting_stores`] rather than
    /// silently refreshing the stale entry.
    pub fn insert(&mut self, record: TraceRecord) {
        self.tick += 1;
        let meta = TraceMeta {
            hits: 0,
            last_use: self.tick,
            source_run: self.source_run,
        };
        self.insert_impl(record, meta, true, None);
    }

    /// Store a trace carrying provenance from an earlier life (snapshot
    /// import, merge replay). A re-encounter of an identical resident
    /// record **absorbs** the incoming provenance
    /// ([`TraceMeta::absorb`]).
    pub fn insert_seeded(&mut self, record: TraceRecord, meta: TraceMeta) {
        self.tick += 1;
        self.insert_impl(record, meta, true, None);
    }

    /// The merge unanimity pass: re-assert `record` for recency without
    /// re-absorbing provenance, with victim selection forbidden from
    /// evicting any record in `pinned`. `meta` is used only when the
    /// record is *not* resident (it lost a capacity fight during the
    /// union replay) and must be re-inserted with its combined history.
    fn insert_pinned(
        &mut self,
        record: TraceRecord,
        meta: TraceMeta,
        pinned: &FxHashSet<TraceRecord>,
    ) {
        self.tick += 1;
        self.insert_impl(record, meta, false, Some(pinned));
    }

    fn insert_impl(
        &mut self,
        record: TraceRecord,
        meta: TraceMeta,
        absorb: bool,
        pinned: Option<&FxHashSet<TraceRecord>>,
    ) {
        let pc = record.start_pc;
        if let Some(entries) = self.store.group_mut(pc) {
            if let Some(idx) = entries
                .iter()
                .position(|e| e.rec.ins == record.ins && e.rec.len == record.len)
            {
                if entries[idx].rec == record {
                    if absorb {
                        entries[idx].meta.absorb(&meta);
                    }
                    // Equality ignores the class mix; if the resident
                    // copy predates mixes (imported from an old
                    // snapshot) and the incoming one knows the mix,
                    // upgrade in place. The cached block carries the old
                    // mix, so it must be rebuilt.
                    if entries[idx].rec.mix.is_empty() && !record.mix.is_empty() {
                        entries[idx].rec.mix = record.mix;
                        entries[idx].block = None;
                    }
                    self.store.touch(pc, idx);
                    self.stats.duplicate_stores += 1;
                } else {
                    entries[idx] = RtmEntry {
                        rec: record,
                        meta,
                        block: None,
                    };
                    self.store.touch(pc, idx);
                    self.stats.conflicting_stores += 1;
                }
                return;
            }
        }
        self.stats.stores += 1;
        let policy = self.policy;
        let now = self.tick;
        let half_life = self.lfu_half_life;
        self.stats.evictions += self.store.insert_with(
            pc,
            RtmEntry {
                rec: record,
                meta,
                block: None,
            },
            &mut |entries| entry_victim(policy, entries, pinned, now, half_life),
            &mut |groups| group_victim(policy, groups, pinned, now, half_life),
        );
    }

    /// The configuration this RTM was built with.
    pub fn config(&self) -> RtmConfig {
        RtmConfig {
            geometry: self.store.geometry(),
        }
    }

    /// Every resident trace with its provenance (store order).
    pub fn provenance(&self) -> impl Iterator<Item = (&TraceRecord, &TraceMeta)> {
        self.store
            .iter_groups()
            .flat_map(|g| g.entries.iter())
            .map(|e| (&e.rec, &e.meta))
    }

    /// Sum of resident traces' hit counts — how much *observed* reuse
    /// the resident state represents, the serving registry's
    /// hit-weighted residency metric.
    pub fn hit_weighted_residency(&self) -> u64 {
        self.provenance()
            .fold(0, |acc, (_, m)| acc.saturating_add(m.hits))
    }

    /// Capture the resident traces (geometry, records, and provenance)
    /// as a portable [`RtmSnapshot`] — the warm-start state a later run
    /// can [`import`](ReuseTraceMemory::import).
    pub fn export(&self) -> RtmSnapshot {
        let mut traces = Vec::with_capacity(self.store.resident as usize);
        let mut meta = Vec::with_capacity(self.store.resident as usize);
        for (_, e) in self.store.iter_lru() {
            traces.push(e.rec.clone());
            meta.push(e.meta);
        }
        RtmSnapshot {
            config: self.config(),
            traces,
            meta,
            shape: 0,
        }
    }

    /// Rebuild an RTM from a snapshot under LRU replacement. The result
    /// starts with fresh statistics: warm-start runs measure only their
    /// own behaviour.
    pub fn import(snapshot: &RtmSnapshot) -> Self {
        Self::import_with(snapshot, ReplacementPolicy::Lru)
    }

    /// Rebuild an RTM from a snapshot under an explicit policy,
    /// preserving each trace's provenance.
    pub fn import_with(snapshot: &RtmSnapshot, policy: ReplacementPolicy) -> Self {
        let mut rtm = Self::new_with(snapshot.config, policy);
        for (trace, meta) in snapshot.entries() {
            rtm.insert_seeded(trace.clone(), meta);
        }
        rtm.stats = RtmStats::default();
        rtm
    }
}

impl ReuseBackend for ReuseTraceMemory {
    fn lookup(&mut self, pc: u32, state: &dyn Fn(Loc) -> u64) -> Option<TraceRecord> {
        ReuseTraceMemory::lookup(self, pc, state)
    }

    fn insert(&mut self, rec: TraceRecord, _state: &dyn Fn(Loc) -> u64) {
        ReuseTraceMemory::insert(self, rec)
    }

    fn on_write(&mut self, _loc: Loc) {}

    fn set_source_run(&mut self, run: u64) {
        ReuseTraceMemory::set_source_run(self, run)
    }

    fn stats(&self) -> RtmStats {
        ReuseTraceMemory::stats(self)
    }

    fn resident(&self) -> u64 {
        ReuseTraceMemory::resident(self)
    }

    fn snapshot(&self) -> Option<RtmSnapshot> {
        Some(self.export())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rec(start_pc: u32, ins: &[(Loc, u64)], outs: &[(Loc, u64)], next_pc: u32) -> TraceRecord {
        TraceRecord {
            start_pc,
            next_pc,
            len: 3,
            ins: ins.to_vec().into_boxed_slice(),
            outs: outs.to_vec().into_boxed_slice(),
            mix: Default::default(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);

    #[test]
    fn paper_configs_have_paper_capacities() {
        assert_eq!(RtmConfig::RTM_512.capacity(), 512);
        assert_eq!(RtmConfig::RTM_4K.capacity(), 4096);
        assert_eq!(RtmConfig::RTM_32K.capacity(), 32768);
        assert_eq!(RtmConfig::RTM_256K.capacity(), 262144);
        assert_eq!(RtmConfig::RTM_4K.label(), "4K");
        assert_eq!(RtmConfig::RTM_512.label(), "512");
    }

    #[test]
    fn lookup_requires_all_inputs_to_match() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5), (Loc::Mem(100), 7)], &[(R2, 12)], 14));

        let good: HashMap<Loc, u64> = [(R1, 5), (Loc::Mem(100), 7)].into();
        let hit = rtm
            .lookup(10, |l| good.get(&l).copied().unwrap_or(0))
            .unwrap();
        assert_eq!(hit.next_pc, 14);
        assert_eq!(hit.outs.as_ref(), &[(R2, 12)]);

        let bad: HashMap<Loc, u64> = [(R1, 5), (Loc::Mem(100), 8)].into();
        assert!(rtm
            .lookup(10, |l| bad.get(&l).copied().unwrap_or(0))
            .is_none());
        // Different PC misses regardless of state.
        assert!(rtm
            .lookup(11, |l| good.get(&l).copied().unwrap_or(0))
            .is_none());
        assert_eq!(rtm.stats().hits, 1);
        assert_eq!(rtm.stats().lookups, 3);
    }

    #[test]
    fn multiple_traces_per_pc_coexist() {
        // "up to 4 different traces starting at the same PC can be stored"
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 0..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v * 10)], 20));
        }
        assert_eq!(rtm.resident(), 4);
        for v in (0..4u64).rev() {
            let hit = rtm.lookup(10, |l| if l == R1 { v } else { 0 }).unwrap();
            assert_eq!(hit.outs[0].1, v * 10);
        }
    }

    #[test]
    fn per_pc_lru_replacement() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512); // 4 per PC
        for v in 0..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[], 20));
        }
        // Touch v=0 making v=1 the LRU; a fifth trace evicts v=1.
        assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        rtm.insert(rec(10, &[(R1, 99)], &[], 20));
        assert_eq!(rtm.resident(), 4);
        assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        assert!(rtm.lookup(10, |l| if l == R1 { 1 } else { 9 }).is_none());
        assert!(rtm.lookup(10, |l| if l == R1 { 99 } else { 9 }).is_some());
        assert_eq!(rtm.stats().evictions, 1);
    }

    #[test]
    fn duplicate_store_is_dropped() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        let r = rec(10, &[(R1, 5)], &[(R2, 6)], 12);
        rtm.insert(r.clone());
        rtm.insert(r.clone());
        assert_eq!(rtm.resident(), 1);
        assert_eq!(rtm.stats().stores, 1);
        assert_eq!(rtm.stats().duplicate_stores, 1);
    }

    #[test]
    fn conflicting_store_replaces_stale_entry() {
        // Same PC, same live-ins, same length — but different outputs:
        // a stale record from another program version. The new record
        // must win and the event must be visible in the stats.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 6)], 12));
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 99)], 12));
        assert_eq!(rtm.resident(), 1);
        assert_eq!(rtm.stats().stores, 1);
        assert_eq!(rtm.stats().duplicate_stores, 0);
        assert_eq!(rtm.stats().conflicting_stores, 1);
        let hit = rtm.lookup(10, |l| if l == R1 { 5 } else { 0 }).unwrap();
        assert_eq!(hit.outs.as_ref(), &[(R2, 99)], "stale outputs survived");

        // Different next_pc with equal outs is a conflict too.
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 99)], 13));
        assert_eq!(rtm.stats().conflicting_stores, 2);
        let hit = rtm.lookup(10, |l| if l == R1 { 5 } else { 0 }).unwrap();
        assert_eq!(hit.next_pc, 13);
    }

    #[test]
    fn same_inputs_different_length_coexist() {
        // Equal live-ins but different trace lengths are both valid
        // (different collection heuristics), not conflicting.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        let mut short = rec(10, &[(R1, 5)], &[(R2, 6)], 12);
        short.len = 2;
        let mut long = rec(10, &[(R1, 5)], &[(R2, 6), (Loc::Mem(8), 1)], 20);
        long.len = 7;
        rtm.insert(short);
        rtm.insert(long);
        assert_eq!(rtm.resident(), 2);
        assert_eq!(rtm.stats().conflicting_stores, 0);
    }

    #[test]
    fn merge_unions_disjoint_snapshots() {
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        a.insert(rec(10, &[(R1, 1)], &[(R2, 2)], 13));
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        b.insert(rec(42, &[(R1, 9)], &[(R2, 8)], 45));
        let merged = RtmSnapshot::merge(&[a.export(), b.export()]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.config, RtmConfig::RTM_512);
        let mut rtm = ReuseTraceMemory::import(&merged);
        assert!(rtm.lookup(10, |l| if l == R1 { 1 } else { 0 }).is_some());
        assert!(rtm.lookup(42, |l| if l == R1 { 9 } else { 0 }).is_some());
    }

    #[test]
    fn merge_gives_shared_traces_mru_priority() {
        // per_pc = 4. A and B share one trace; B brings three more. The
        // shared trace is refreshed on B's replay, so a capacity-pushed
        // fifth insert evicts a B-only trace, never the shared one.
        let shared = rec(10, &[(R1, 0)], &[(R2, 0)], 20);
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        a.insert(shared.clone());
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 1..4u64 {
            b.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
        }
        b.insert(shared.clone());
        let outcome = RtmSnapshot::merge_detailed(&[a.export(), b.export()]).unwrap();
        assert_eq!(outcome.input_traces, 5);
        assert_eq!(outcome.duplicates, 1);
        assert_eq!(outcome.conflicts, 0);
        assert_eq!(outcome.snapshot.len(), 4);
        let mut rtm = ReuseTraceMemory::import(&outcome.snapshot);
        rtm.insert(rec(10, &[(R1, 99)], &[], 20)); // group full: evicts LRU
        assert!(
            rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some(),
            "shared trace lost under capacity pressure"
        );
    }

    #[test]
    fn merge_counts_conflicts_newest_wins() {
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        a.insert(rec(10, &[(R1, 5)], &[(R2, 6)], 12));
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        b.insert(rec(10, &[(R1, 5)], &[(R2, 77)], 12));
        let outcome = RtmSnapshot::merge_detailed(&[a.export(), b.export()]).unwrap();
        assert_eq!(outcome.conflicts, 1);
        assert_eq!(outcome.snapshot.len(), 1);
        assert_eq!(outcome.snapshot.traces[0].outs.as_ref(), &[(R2, 77)]);
    }

    #[test]
    fn merge_rejects_geometry_mismatch_and_empty() {
        assert_eq!(RtmSnapshot::merge(&[]), Err(MergeError::Empty));
        let a = ReuseTraceMemory::new(RtmConfig::RTM_512).export();
        let b = ReuseTraceMemory::new(RtmConfig::RTM_4K).export();
        assert!(matches!(
            RtmSnapshot::merge(&[a, b]),
            Err(MergeError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn set_conflicts_evict_whole_pc_groups() {
        // 32 sets in RTM_512: PCs 0 and 32 share set 0. With 4 ways they
        // coexist; load 5 distinct PCs in the same set and one group goes.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for k in 0..5u32 {
            let pc = k * 32;
            rtm.insert(rec(pc, &[(R1, 1)], &[], pc + 1));
        }
        // PC 0 was the LRU group: gone.
        assert!(rtm.lookup(0, |_| 1).is_none());
        assert!(rtm.lookup(4 * 32, |_| 1).is_some());
    }

    #[test]
    fn export_import_roundtrip_preserves_contents_and_lru() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 0..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v * 10)], 20));
        }
        rtm.insert(rec(42, &[(R1, 1)], &[], 43));
        // Touch v=0 so it is MRU; v=1 becomes the per-PC LRU.
        assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());

        let snapshot = rtm.export();
        assert_eq!(snapshot.len(), 5);
        assert_eq!(snapshot.config, RtmConfig::RTM_512);

        let mut again = ReuseTraceMemory::import(&snapshot);
        assert_eq!(again.resident(), 5);
        assert_eq!(again.stats(), RtmStats::default());
        assert_eq!(again.export(), snapshot);
        // Replacement state carried over: a fifth trace at PC 10 must
        // evict v=1 (the LRU), exactly as it would have in the original.
        again.insert(rec(10, &[(R1, 99)], &[], 20));
        assert!(again.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        assert!(again.lookup(10, |l| if l == R1 { 1 } else { 9 }).is_none());
    }

    #[test]
    fn snapshot_via_backend_trait() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(7, &[(R1, 1)], &[(R2, 2)], 9));
        let backend: &dyn ReuseBackend = &rtm;
        let snap = backend.snapshot().expect("value-compare RTM snapshots");
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.traces[0].start_pc, 7);
    }

    #[test]
    fn lfu_keeps_hot_entry_lru_would_evict() {
        // per_pc = 4. Fill a group, hit the oldest entry twice, then
        // let three younger entries refresh past it. Under LRU the hot
        // entry is the victim; under LFU the never-hit LRU-most young
        // entry goes instead.
        let run = |policy: ReplacementPolicy| -> ReuseTraceMemory {
            let mut rtm = ReuseTraceMemory::new_with(RtmConfig::RTM_512, policy);
            for v in 0..4u64 {
                rtm.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
            }
            assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
            assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
            for v in 1..4u64 {
                rtm.insert(rec(10, &[(R1, v)], &[(R2, v)], 20)); // duplicates: refresh
            }
            rtm.insert(rec(10, &[(R1, 99)], &[], 20)); // group full: evict
            rtm
        };
        let mut lru = run(ReplacementPolicy::Lru);
        assert!(
            lru.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_none(),
            "LRU keeps the hot-but-old entry?"
        );
        let mut lfu = run(ReplacementPolicy::Lfu);
        assert!(
            lfu.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some(),
            "LFU evicted the hottest entry"
        );
        assert!(lfu.lookup(10, |l| if l == R1 { 1 } else { 9 }).is_none());
    }

    #[test]
    fn lfu_aging_forgets_stale_hot_trace() {
        use crate::policy::LFU_HALF_LIFE;
        // per_pc = 4. An early trace racks up 8 hits, then goes idle for
        // many half-lives while a fresh streak (3 traces, 2 recent hits
        // each) fills the group. Without aging, pure frequency keeps the
        // stale trace forever; with decay its effective count (8 >> 4 =
        // 0) loses to the streak and it is the eviction victim.
        let mut rtm = ReuseTraceMemory::new_with(RtmConfig::RTM_512, ReplacementPolicy::Lfu);
        rtm.insert(rec(10, &[(R1, 0)], &[(R2, 0)], 20));
        for _ in 0..8 {
            assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        }
        // Idle period: unrelated lookups advance the RTM clock.
        for _ in 0..4 * LFU_HALF_LIFE {
            assert!(rtm.lookup(999, |_| 0).is_none());
        }
        for v in 1..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
            for _ in 0..2 {
                assert!(rtm.lookup(10, |l| if l == R1 { v } else { 9 }).is_some());
            }
        }
        rtm.insert(rec(10, &[(R1, 99)], &[], 20)); // group full: evict
        assert!(
            rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_none(),
            "stale high-hit trace survived a fresh streak"
        );
        for v in 1..4u64 {
            assert!(
                rtm.lookup(10, |l| if l == R1 { v } else { 9 }).is_some(),
                "fresh trace {v} lost to the stale one"
            );
        }
    }

    #[test]
    fn lfu_keeps_recent_hot_trace_within_half_life() {
        // The same shape without the idle period: the hot trace's count
        // has not decayed, so it survives (the pre-aging behaviour).
        let mut rtm = ReuseTraceMemory::new_with(RtmConfig::RTM_512, ReplacementPolicy::Lfu);
        rtm.insert(rec(10, &[(R1, 0)], &[(R2, 0)], 20));
        for _ in 0..8 {
            assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        }
        for v in 1..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
            for _ in 0..2 {
                assert!(rtm.lookup(10, |l| if l == R1 { v } else { 9 }).is_some());
            }
        }
        rtm.insert(rec(10, &[(R1, 99)], &[], 20));
        assert!(
            rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some(),
            "recently hot trace evicted with no aging due"
        );
    }

    #[test]
    fn cost_benefit_weighs_trace_length() {
        // Two never-hit entries: a short recent one and a long old one.
        // Cost/benefit evicts the short one even though it is more
        // recent; LRU would evict the long (older) one.
        let mut rtm =
            ReuseTraceMemory::new_with(RtmConfig::RTM_512, ReplacementPolicy::CostBenefit);
        let mut long = rec(10, &[(R1, 0)], &[(R2, 0)], 40);
        long.len = 30;
        rtm.insert(long);
        let mut short = rec(10, &[(R1, 1)], &[(R2, 1)], 12);
        short.len = 2;
        rtm.insert(short.clone());
        for v in 2..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[], 20));
        }
        rtm.insert(rec(10, &[(R1, 99)], &[], 20)); // group full: evict
        assert!(
            rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some(),
            "cost/benefit evicted the long trace"
        );
        assert!(rtm.lookup(10, |l| if l == R1 { 1 } else { 9 }).is_none());
    }

    #[test]
    fn provenance_tracks_hits_and_survives_roundtrip() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.set_source_run(42);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 6)], 13));
        assert!(rtm.lookup(10, |l| if l == R1 { 5 } else { 0 }).is_some());
        assert!(rtm.lookup(10, |l| if l == R1 { 5 } else { 0 }).is_some());
        assert_eq!(rtm.hit_weighted_residency(), 2);
        let (_, meta) = rtm.provenance().next().unwrap();
        assert_eq!(meta.hits, 2);
        assert_eq!(meta.source_run, 42);

        let snapshot = rtm.export();
        assert_eq!(snapshot.meta.len(), snapshot.traces.len());
        assert_eq!(snapshot.total_hits(), 2);
        let again = ReuseTraceMemory::import(&snapshot);
        assert_eq!(again.export(), snapshot, "provenance lost in roundtrip");
        assert_eq!(again.hit_weighted_residency(), 2);
    }

    #[test]
    fn merge_absorbs_provenance_of_shared_traces() {
        let shared = rec(10, &[(R1, 0)], &[(R2, 0)], 20);
        let hot_run = |hits: u64| {
            let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
            rtm.insert(shared.clone());
            for _ in 0..hits {
                assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
            }
            rtm.export()
        };
        let outcome =
            RtmSnapshot::merge_detailed_with(&[hot_run(3), hot_run(2)], ReplacementPolicy::Lfu)
                .unwrap();
        assert_eq!(outcome.snapshot.len(), 1);
        assert_eq!(
            outcome.snapshot.total_hits(),
            5,
            "shared trace must combine both runs' hit counts"
        );
    }

    #[test]
    fn merge_with_lfu_preserves_unanimous_traces_under_contention() {
        // per_pc = 4. Both inputs keep the same two never-hit traces;
        // each also brings its own extras (B's are hot), so the union's
        // six distinct traces overflow the group. No unanimous trace
        // may be lost, whatever the policy ranks lowest.
        let unanimous: Vec<TraceRecord> = (0..2u64)
            .map(|v| rec(10, &[(R1, v)], &[(R2, v)], 20))
            .collect();
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for t in &unanimous {
            a.insert(t.clone());
            b.insert(t.clone());
        }
        for v in 50..52u64 {
            a.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
        }
        for v in 100..102u64 {
            b.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
            // Make the extras hot so LFU ranks the unanimous set lowest.
            for _ in 0..5 {
                assert!(b.lookup(10, |l| if l == R1 { v } else { 9 }).is_some());
            }
        }
        for policy in ReplacementPolicy::ALL {
            let merged = RtmSnapshot::merge_with(&[a.export(), b.export()], policy).unwrap();
            for t in &unanimous {
                assert!(
                    merged.traces.contains(t),
                    "{policy}: merge dropped a unanimous trace"
                );
            }
        }
    }

    #[test]
    fn empty_input_trace_always_hits() {
        // A trace with no live-ins (pure constant generation) matches any
        // state — the reuse test has nothing to compare.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[], &[(R2, 1)], 13));
        assert!(rtm.lookup(10, |_| 12345).is_some());
    }

    /// A 20-instruction VM for fast-lookup tests (all trace next_pcs in
    /// the tests below are < 20).
    fn fast_vm() -> Vm {
        let src = format!("{}halt\n", "nop\n".repeat(19));
        Vm::new(&tlr_asm::assemble(&src).unwrap())
    }

    fn cached_block(rtm: &mut ReuseTraceMemory, pc: u32, idx: usize) -> Option<&TraceBlock> {
        rtm.store.group_mut(pc).unwrap()[idx].block.as_deref()
    }

    #[test]
    fn fast_lookup_serves_hits_and_matches_reference_bookkeeping() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 12), (Loc::Mem(7), 3)], 14));

        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        let hit = rtm.lookup_fast(10, &mut vm, false).unwrap().unwrap();
        assert_eq!(hit.len, 3);
        assert_eq!(hit.next_pc, 14);
        assert!(hit.rec.is_none(), "no record clone unless requested");
        // Outputs applied directly.
        assert_eq!(vm.peek_loc(R2), 12);
        assert_eq!(vm.peek_loc(Loc::Mem(7)), 3);
        assert_eq!(vm.pc(), 14);
        // The block is now cached on the entry.
        assert!(cached_block(&mut rtm, 10, 0).is_some());

        // want_record clones the full record.
        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        let hit = rtm.lookup_fast(10, &mut vm, true).unwrap().unwrap();
        assert_eq!(
            hit.rec.unwrap().outs.as_ref(),
            &[(R2, 12), (Loc::Mem(7), 3)]
        );

        // A miss probes without applying anything.
        let mut vm = fast_vm();
        vm.poke_loc(R1, 6);
        assert!(rtm.lookup_fast(10, &mut vm, false).unwrap().is_none());
        assert_eq!(vm.peek_loc(R2), 0);
        assert_eq!(rtm.stats().hits, 2);
        assert_eq!(rtm.stats().lookups, 3);
    }

    #[test]
    fn conflict_replacement_invalidates_the_cached_block() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 12)], 14));

        // Build and cache the block.
        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        rtm.lookup_fast(10, &mut vm, false).unwrap().unwrap();
        assert!(cached_block(&mut rtm, 10, 0).is_some());

        // Same reuse key, different outputs: conflict replacement drops
        // the stale block...
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 99)], 15));
        assert_eq!(rtm.stats().conflicting_stores, 1);
        assert!(cached_block(&mut rtm, 10, 0).is_none());

        // ...and the next fast hit serves the replacement record.
        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        let hit = rtm.lookup_fast(10, &mut vm, false).unwrap().unwrap();
        assert_eq!(hit.next_pc, 15);
        assert_eq!(vm.peek_loc(R2), 99);
    }

    #[test]
    fn mix_upgrade_invalidates_the_cached_block() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 12)], 14));
        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        rtm.lookup_fast(10, &mut vm, false).unwrap().unwrap();
        assert!(cached_block(&mut rtm, 10, 0).is_some());

        // Re-encounter of the identical record, now carrying a class
        // mix: the duplicate path upgrades the mix in place, so the
        // cached block (which froze the empty mix) must go.
        let mut upgraded = rec(10, &[(R1, 5)], &[(R2, 12)], 14);
        upgraded.mix.record(tlr_isa::OpClass::IntAlu);
        rtm.insert(upgraded);
        assert_eq!(rtm.stats().duplicate_stores, 1);
        assert!(cached_block(&mut rtm, 10, 0).is_none());

        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        let hit = rtm.lookup_fast(10, &mut vm, false).unwrap().unwrap();
        assert!(!hit.mix.is_empty(), "rebuilt block carries the new mix");
    }

    #[test]
    fn eviction_discards_the_entry_and_its_block() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512); // 4 per PC
        rtm.insert(rec(10, &[(R1, 0)], &[(R2, 100)], 14));
        let mut vm = fast_vm();
        vm.poke_loc(R1, 0);
        rtm.lookup_fast(10, &mut vm, false).unwrap().unwrap();

        // Fill the PC group past capacity; the LRU entry (v=0, despite
        // its recent hit being older than the newer stores) is evicted.
        for v in 1..=4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v * 10)], 14));
        }
        assert!(rtm.stats().evictions >= 1);
        let mut vm = fast_vm();
        vm.poke_loc(R1, 0);
        assert!(
            rtm.lookup_fast(10, &mut vm, false).unwrap().is_none(),
            "evicted trace must not be served from any cache"
        );
    }

    #[test]
    fn fast_lookup_mirrors_bad_jump_target_errors() {
        // A matched trace whose next_pc is outside the program must fail
        // exactly like lookup + apply_trace: error, no outputs applied.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 12)], 999));
        let mut vm = fast_vm();
        vm.poke_loc(R1, 5);
        let err = rtm.lookup_fast(10, &mut vm, false).unwrap_err();
        assert_eq!(
            err,
            VmError::BadJumpTarget {
                pc: vm.pc(),
                target: 999
            }
        );
        assert_eq!(vm.peek_loc(R2), 0, "no outputs applied on error");
        // The reference path counts the hit before apply_trace fails;
        // the fast path's bookkeeping matches.
        assert_eq!(rtm.stats().hits, 1);
    }
}
