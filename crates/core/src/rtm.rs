//! The Reuse Trace Memory (§3.1, §4.6).
//!
//! A set-associative memory indexed by the least-significant bits of the
//! PC. Each set holds several PC groups; each group holds several traces
//! starting at that PC (the paper's "N entries per initial PC"), replaced
//! LRU. An entry stores the trace's input identifiers+contents, output
//! identifiers+contents and next PC — Figure 1 of the paper.
//!
//! The **reuse test** (§3.3) implemented here is the value-comparison
//! variant: on every fetch, each candidate trace for the current PC is
//! checked by reading the current contents of all its input locations and
//! comparing against the recorded values. (The paper's alternative — a
//! valid bit invalidated on every write — trades test latency for
//! invalidation traffic; Figure 8b models its cost as reuse latency
//! proportional to the trace I/O count, which `tlr-core::limits` covers.)

use crate::ilr::{SetAssocGeometry, SetAssocStore};
use crate::trace::TraceRecord;
use tlr_isa::Loc;

/// RTM configuration: geometry is the paper's, I/O caps are enforced at
/// collection time (see [`crate::trace::IoCaps`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtmConfig {
    /// Set-associative geometry.
    pub geometry: SetAssocGeometry,
}

impl RtmConfig {
    /// 512-entry RTM: 32 sets × 4 ways × 4 traces per PC (§4.6: "4-way
    /// set-associative memory (5-bit index) with 4 entries per initial
    /// PC").
    pub const RTM_512: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 32,
            ways: 4,
            per_pc: 4,
        },
    };

    /// 4K-entry RTM: 128 sets × 4 ways × 8 traces per PC.
    pub const RTM_4K: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 128,
            ways: 4,
            per_pc: 8,
        },
    };

    /// 32K-entry RTM: 256 sets × 8 ways × 16 traces per PC.
    pub const RTM_32K: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 256,
            ways: 8,
            per_pc: 16,
        },
    };

    /// 256K-entry RTM: 2048 sets × 8 ways × 16 traces per PC.
    pub const RTM_256K: RtmConfig = RtmConfig {
        geometry: SetAssocGeometry {
            sets: 2048,
            ways: 8,
            per_pc: 16,
        },
    };

    /// The four capacities evaluated in Figure 9, ascending.
    pub const PAPER_SWEEP: [RtmConfig; 4] = [
        RtmConfig::RTM_512,
        RtmConfig::RTM_4K,
        RtmConfig::RTM_32K,
        RtmConfig::RTM_256K,
    ];

    /// Total trace capacity.
    pub fn capacity(&self) -> u64 {
        self.geometry.capacity()
    }

    /// Human-readable capacity label ("512", "4K", ...).
    pub fn label(&self) -> String {
        let c = self.capacity();
        if c.is_multiple_of(1024) {
            format!("{}K", c / 1024)
        } else {
            format!("{c}")
        }
    }
}

/// Counters for RTM behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtmStats {
    /// Reuse tests performed (one per fetch of a PC with resident traces
    /// counts per candidate-set probe; misses on empty groups count too).
    pub lookups: u64,
    /// Successful reuse tests.
    pub hits: u64,
    /// Traces stored.
    pub stores: u64,
    /// Traces rejected as duplicates of a resident entry.
    pub duplicate_stores: u64,
    /// Stores whose reuse key (start PC, live-ins, length) matched a
    /// resident entry but whose outputs or next PC disagreed. Impossible
    /// under deterministic execution of a single program; observed when
    /// snapshots from different program versions (or a buggy producer)
    /// are merged. The resident entry is replaced by the newer record.
    pub conflicting_stores: u64,
    /// Entries evicted (LRU, either level).
    pub evictions: u64,
}

/// A reuse-test mechanism behind the engine: either the full
/// value-comparison RTM ([`ReuseTraceMemory`]) or the §3.3 valid-bit
/// variant ([`crate::valid_bit::InvalidatingRtm`]).
pub trait ReuseBackend {
    /// The reuse test at a fetch point: return a trace starting at `pc`
    /// that is guaranteed to reproduce execution from the current state.
    fn lookup(&mut self, pc: u32, state: &dyn Fn(Loc) -> u64) -> Option<TraceRecord>;

    /// Store a collected trace. `state` reads the architectural value of
    /// a location *at store time* (valid-bit backends need it to detect
    /// self-clobbered inputs; the value-comparison backend ignores it).
    fn insert(&mut self, rec: TraceRecord, state: &dyn Fn(Loc) -> u64);

    /// Notify an architectural write (valid-bit backends invalidate
    /// matching entries; the value-comparison backend does nothing).
    fn on_write(&mut self, loc: Loc);

    /// Behaviour counters.
    fn stats(&self) -> RtmStats;

    /// Entries resident.
    fn resident(&self) -> u64;

    /// Export resident traces for persistence, if this backend supports
    /// snapshotting (only the value-comparison RTM does: valid-bit
    /// entries are tied to invalidation state that cannot outlive the
    /// run).
    fn snapshot(&self) -> Option<RtmSnapshot> {
        None
    }
}

/// A portable snapshot of an RTM's resident traces.
///
/// Produced by [`ReuseTraceMemory::export`] and consumed by
/// [`ReuseTraceMemory::import`] to warm-start a later run from a prior
/// run's reuse state (serialized to disk by `tlr-persist`). Traces are
/// ordered so that re-inserting them into an empty RTM of the same
/// geometry reproduces the exporter's LRU replacement state.
#[derive(Clone, Debug, PartialEq)]
pub struct RtmSnapshot {
    /// Geometry the snapshot was taken under.
    pub config: RtmConfig,
    /// Resident traces, LRU-first per set.
    pub traces: Vec<TraceRecord>,
}

impl RtmSnapshot {
    /// Number of traces captured.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when the snapshot holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Union several runs' snapshots into one (the substrate of a
    /// serving fleet pooling reuse state).
    ///
    /// All inputs must share one geometry; the merge replays the
    /// inputs' traces **interleaved round-robin from their LRU ends**
    /// (each input is ordered LRU-first) into an empty RTM of that
    /// geometry. Capacity is enforced by the RTM's own two-level LRU
    /// replacement, and recency priority falls out of the replay order:
    /// a trace present in several inputs is refreshed to MRU on each
    /// re-encounter and outlives single-input traces under capacity
    /// pressure; within a round, later inputs rank ahead, so list the
    /// freshest run last; and an input with more traces keeps
    /// contributing after shorter inputs are exhausted, so under
    /// contention the largest input's hot tail ends up MRU-most —
    /// unlike a sequential replay, though, no input can wholesale-evict
    /// the others' PC groups with its *cold* end, because every input's
    /// early (LRU) traces land early. Conflicting records (same
    /// live-ins and length, different
    /// outputs — different program versions or a buggy producer) are
    /// resolved newest-wins and counted, see
    /// [`RtmStats::conflicting_stores`].
    ///
    /// Traces **every** input kept — the pooled fleet's unanimous, and
    /// so hottest, reuse state — are re-asserted in a final pass, which
    /// makes them MRU-most and guarantees capacity contention never
    /// drops one: per set, unanimous PC groups number at most `ways`
    /// (each input held them simultaneously) and unanimous traces per
    /// group at most `per_pc`, so the pass only ever evicts
    /// non-unanimous state.
    pub fn merge(snapshots: &[RtmSnapshot]) -> Result<RtmSnapshot, MergeError> {
        Ok(Self::merge_detailed(snapshots)?.snapshot)
    }

    /// [`merge`](RtmSnapshot::merge), also reporting what the union did:
    /// input trace count, duplicates coalesced, conflicts resolved, and
    /// entries lost to capacity.
    pub fn merge_detailed(snapshots: &[RtmSnapshot]) -> Result<MergeOutcome, MergeError> {
        let first = snapshots.first().ok_or(MergeError::Empty)?;
        for s in &snapshots[1..] {
            if s.config != first.config {
                return Err(MergeError::GeometryMismatch {
                    first: first.config,
                    other: s.config,
                });
            }
        }
        let mut rtm = ReuseTraceMemory::new(first.config);
        let input_traces: usize = snapshots.iter().map(|s| s.traces.len()).sum();
        let mut iters: Vec<_> = snapshots.iter().map(|s| s.traces.iter()).collect();
        loop {
            let mut exhausted = true;
            for it in iters.iter_mut() {
                if let Some(trace) = it.next() {
                    rtm.insert(trace.clone());
                    exhausted = false;
                }
            }
            if exhausted {
                break;
            }
        }
        // Duplicate/conflict counts describe the union itself; take them
        // before the unanimity pass re-encounters records a second time.
        let union_stats = rtm.stats();
        if snapshots.len() > 1 {
            // Count per input (an input's export never repeats a record,
            // but hand-built snapshots might — count each input once).
            let mut seen: tlr_util::FxHashMap<&TraceRecord, (usize, usize)> =
                tlr_util::FxHashMap::default();
            for (input, snap) in snapshots.iter().enumerate() {
                for trace in &snap.traces {
                    let entry = seen.entry(trace).or_insert((0, usize::MAX));
                    if entry.1 != input {
                        *entry = (entry.0 + 1, input);
                    }
                }
            }
            // Every unanimous trace appears in the first input; re-assert
            // in its order so relative recency among them is stable.
            for trace in &first.traces {
                if seen.get(trace).is_some_and(|(n, _)| *n == snapshots.len()) {
                    rtm.insert(trace.clone());
                }
            }
        }
        Ok(MergeOutcome {
            snapshot: rtm.export(),
            input_traces,
            duplicates: union_stats.duplicate_stores,
            conflicts: union_stats.conflicting_stores,
            evictions: rtm.stats().evictions,
        })
    }
}

/// Why a set of snapshots cannot be merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No snapshots were given.
    Empty,
    /// The inputs disagree on RTM geometry. Merging across geometries
    /// would silently re-shape one run's replacement state; re-export
    /// under a common geometry instead.
    GeometryMismatch {
        /// Geometry of the first input.
        first: RtmConfig,
        /// The first disagreeing geometry.
        other: RtmConfig,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "cannot merge zero snapshots"),
            MergeError::GeometryMismatch { first, other } => write!(
                f,
                "snapshot geometries differ: {:?} vs {:?}; merge inputs must share one RTM geometry",
                first.geometry, other.geometry
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// What [`RtmSnapshot::merge_detailed`] produced.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The merged snapshot.
    pub snapshot: RtmSnapshot,
    /// Total traces across all inputs.
    pub input_traces: usize,
    /// Input traces coalesced as exact duplicates of an earlier one.
    pub duplicates: u64,
    /// Conflicting records resolved newest-wins.
    pub conflicts: u64,
    /// Entries lost to capacity (LRU, either level).
    pub evictions: u64,
}

/// The Reuse Trace Memory.
pub struct ReuseTraceMemory {
    store: SetAssocStore<TraceRecord>,
    stats: RtmStats,
}

impl ReuseTraceMemory {
    /// Empty RTM with the given configuration.
    pub fn new(config: RtmConfig) -> Self {
        Self {
            store: SetAssocStore::new(config.geometry),
            stats: RtmStats::default(),
        }
    }

    /// Behaviour counters so far.
    pub fn stats(&self) -> RtmStats {
        self.stats
    }

    /// Traces currently resident.
    pub fn resident(&self) -> u64 {
        self.store.resident
    }

    /// The reuse test: find a resident trace starting at `pc` whose
    /// recorded live-in values all equal the current architectural values
    /// (`state(loc)`); most recently used candidates are preferred. On a
    /// hit the entry is touched (MRU) and cloned out.
    ///
    /// The state closure is the processor's register file / memory read
    /// port; `tlr_vm::Vm::peek_loc` is the canonical implementation.
    pub fn lookup(&mut self, pc: u32, state: impl Fn(Loc) -> u64) -> Option<TraceRecord> {
        self.stats.lookups += 1;
        let entries = self.store.group_mut(pc)?;
        // MRU-first: highest index is most recently used.
        let found = entries
            .iter()
            .enumerate()
            .rev()
            .find(|(_, rec)| rec.ins.iter().all(|(loc, val)| state(*loc) == *val))
            .map(|(i, rec)| (i, rec.clone()));
        match found {
            Some((idx, rec)) => {
                self.store.touch(pc, idx);
                self.stats.hits += 1;
                Some(rec)
            }
            None => None,
        }
    }

    /// Store a collected trace. A trace **fully identical** to a resident
    /// entry for the same PC is dropped (it adds no coverage) — its entry
    /// is refreshed to MRU instead. A trace whose reuse key (live-ins and
    /// length) matches a resident entry but whose outputs or next PC
    /// differ is a *conflict*: deterministic execution of one program
    /// cannot produce it, so one of the two records is wrong. The newer
    /// record wins — it replaces the resident entry in place — and the
    /// event is counted in [`RtmStats::conflicting_stores`] rather than
    /// silently refreshing the stale entry.
    pub fn insert(&mut self, record: TraceRecord) {
        let pc = record.start_pc;
        if let Some(entries) = self.store.group_mut(pc) {
            if let Some(idx) = entries
                .iter()
                .position(|e| e.ins == record.ins && e.len == record.len)
            {
                if entries[idx] == record {
                    self.store.touch(pc, idx);
                    self.stats.duplicate_stores += 1;
                } else {
                    entries[idx] = record;
                    self.store.touch(pc, idx);
                    self.stats.conflicting_stores += 1;
                }
                return;
            }
        }
        self.stats.stores += 1;
        self.stats.evictions += self.store.insert(pc, record);
    }

    /// The configuration this RTM was built with.
    pub fn config(&self) -> RtmConfig {
        RtmConfig {
            geometry: self.store.geometry(),
        }
    }

    /// Capture the resident traces (and geometry) as a portable
    /// [`RtmSnapshot`] — the warm-start state a later run can
    /// [`import`](ReuseTraceMemory::import).
    pub fn export(&self) -> RtmSnapshot {
        RtmSnapshot {
            config: self.config(),
            traces: self.store.iter_lru().map(|(_, rec)| rec.clone()).collect(),
        }
    }

    /// Rebuild an RTM from a snapshot. The result starts with fresh
    /// statistics: warm-start runs measure only their own behaviour.
    pub fn import(snapshot: &RtmSnapshot) -> Self {
        let mut rtm = Self::new(snapshot.config);
        for trace in &snapshot.traces {
            rtm.insert(trace.clone());
        }
        rtm.stats = RtmStats::default();
        rtm
    }
}

impl ReuseBackend for ReuseTraceMemory {
    fn lookup(&mut self, pc: u32, state: &dyn Fn(Loc) -> u64) -> Option<TraceRecord> {
        ReuseTraceMemory::lookup(self, pc, state)
    }

    fn insert(&mut self, rec: TraceRecord, _state: &dyn Fn(Loc) -> u64) {
        ReuseTraceMemory::insert(self, rec)
    }

    fn on_write(&mut self, _loc: Loc) {}

    fn stats(&self) -> RtmStats {
        ReuseTraceMemory::stats(self)
    }

    fn resident(&self) -> u64 {
        ReuseTraceMemory::resident(self)
    }

    fn snapshot(&self) -> Option<RtmSnapshot> {
        Some(self.export())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rec(start_pc: u32, ins: &[(Loc, u64)], outs: &[(Loc, u64)], next_pc: u32) -> TraceRecord {
        TraceRecord {
            start_pc,
            next_pc,
            len: 3,
            ins: ins.to_vec().into_boxed_slice(),
            outs: outs.to_vec().into_boxed_slice(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);

    #[test]
    fn paper_configs_have_paper_capacities() {
        assert_eq!(RtmConfig::RTM_512.capacity(), 512);
        assert_eq!(RtmConfig::RTM_4K.capacity(), 4096);
        assert_eq!(RtmConfig::RTM_32K.capacity(), 32768);
        assert_eq!(RtmConfig::RTM_256K.capacity(), 262144);
        assert_eq!(RtmConfig::RTM_4K.label(), "4K");
        assert_eq!(RtmConfig::RTM_512.label(), "512");
    }

    #[test]
    fn lookup_requires_all_inputs_to_match() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5), (Loc::Mem(100), 7)], &[(R2, 12)], 14));

        let good: HashMap<Loc, u64> = [(R1, 5), (Loc::Mem(100), 7)].into();
        let hit = rtm
            .lookup(10, |l| good.get(&l).copied().unwrap_or(0))
            .unwrap();
        assert_eq!(hit.next_pc, 14);
        assert_eq!(hit.outs.as_ref(), &[(R2, 12)]);

        let bad: HashMap<Loc, u64> = [(R1, 5), (Loc::Mem(100), 8)].into();
        assert!(rtm
            .lookup(10, |l| bad.get(&l).copied().unwrap_or(0))
            .is_none());
        // Different PC misses regardless of state.
        assert!(rtm
            .lookup(11, |l| good.get(&l).copied().unwrap_or(0))
            .is_none());
        assert_eq!(rtm.stats().hits, 1);
        assert_eq!(rtm.stats().lookups, 3);
    }

    #[test]
    fn multiple_traces_per_pc_coexist() {
        // "up to 4 different traces starting at the same PC can be stored"
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 0..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v * 10)], 20));
        }
        assert_eq!(rtm.resident(), 4);
        for v in (0..4u64).rev() {
            let hit = rtm.lookup(10, |l| if l == R1 { v } else { 0 }).unwrap();
            assert_eq!(hit.outs[0].1, v * 10);
        }
    }

    #[test]
    fn per_pc_lru_replacement() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512); // 4 per PC
        for v in 0..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[], 20));
        }
        // Touch v=0 making v=1 the LRU; a fifth trace evicts v=1.
        assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        rtm.insert(rec(10, &[(R1, 99)], &[], 20));
        assert_eq!(rtm.resident(), 4);
        assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        assert!(rtm.lookup(10, |l| if l == R1 { 1 } else { 9 }).is_none());
        assert!(rtm.lookup(10, |l| if l == R1 { 99 } else { 9 }).is_some());
        assert_eq!(rtm.stats().evictions, 1);
    }

    #[test]
    fn duplicate_store_is_dropped() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        let r = rec(10, &[(R1, 5)], &[(R2, 6)], 12);
        rtm.insert(r.clone());
        rtm.insert(r.clone());
        assert_eq!(rtm.resident(), 1);
        assert_eq!(rtm.stats().stores, 1);
        assert_eq!(rtm.stats().duplicate_stores, 1);
    }

    #[test]
    fn conflicting_store_replaces_stale_entry() {
        // Same PC, same live-ins, same length — but different outputs:
        // a stale record from another program version. The new record
        // must win and the event must be visible in the stats.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 6)], 12));
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 99)], 12));
        assert_eq!(rtm.resident(), 1);
        assert_eq!(rtm.stats().stores, 1);
        assert_eq!(rtm.stats().duplicate_stores, 0);
        assert_eq!(rtm.stats().conflicting_stores, 1);
        let hit = rtm.lookup(10, |l| if l == R1 { 5 } else { 0 }).unwrap();
        assert_eq!(hit.outs.as_ref(), &[(R2, 99)], "stale outputs survived");

        // Different next_pc with equal outs is a conflict too.
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 99)], 13));
        assert_eq!(rtm.stats().conflicting_stores, 2);
        let hit = rtm.lookup(10, |l| if l == R1 { 5 } else { 0 }).unwrap();
        assert_eq!(hit.next_pc, 13);
    }

    #[test]
    fn same_inputs_different_length_coexist() {
        // Equal live-ins but different trace lengths are both valid
        // (different collection heuristics), not conflicting.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        let mut short = rec(10, &[(R1, 5)], &[(R2, 6)], 12);
        short.len = 2;
        let mut long = rec(10, &[(R1, 5)], &[(R2, 6), (Loc::Mem(8), 1)], 20);
        long.len = 7;
        rtm.insert(short);
        rtm.insert(long);
        assert_eq!(rtm.resident(), 2);
        assert_eq!(rtm.stats().conflicting_stores, 0);
    }

    #[test]
    fn merge_unions_disjoint_snapshots() {
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        a.insert(rec(10, &[(R1, 1)], &[(R2, 2)], 13));
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        b.insert(rec(42, &[(R1, 9)], &[(R2, 8)], 45));
        let merged = RtmSnapshot::merge(&[a.export(), b.export()]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.config, RtmConfig::RTM_512);
        let mut rtm = ReuseTraceMemory::import(&merged);
        assert!(rtm.lookup(10, |l| if l == R1 { 1 } else { 0 }).is_some());
        assert!(rtm.lookup(42, |l| if l == R1 { 9 } else { 0 }).is_some());
    }

    #[test]
    fn merge_gives_shared_traces_mru_priority() {
        // per_pc = 4. A and B share one trace; B brings three more. The
        // shared trace is refreshed on B's replay, so a capacity-pushed
        // fifth insert evicts a B-only trace, never the shared one.
        let shared = rec(10, &[(R1, 0)], &[(R2, 0)], 20);
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        a.insert(shared.clone());
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 1..4u64 {
            b.insert(rec(10, &[(R1, v)], &[(R2, v)], 20));
        }
        b.insert(shared.clone());
        let outcome = RtmSnapshot::merge_detailed(&[a.export(), b.export()]).unwrap();
        assert_eq!(outcome.input_traces, 5);
        assert_eq!(outcome.duplicates, 1);
        assert_eq!(outcome.conflicts, 0);
        assert_eq!(outcome.snapshot.len(), 4);
        let mut rtm = ReuseTraceMemory::import(&outcome.snapshot);
        rtm.insert(rec(10, &[(R1, 99)], &[], 20)); // group full: evicts LRU
        assert!(
            rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some(),
            "shared trace lost under capacity pressure"
        );
    }

    #[test]
    fn merge_counts_conflicts_newest_wins() {
        let mut a = ReuseTraceMemory::new(RtmConfig::RTM_512);
        a.insert(rec(10, &[(R1, 5)], &[(R2, 6)], 12));
        let mut b = ReuseTraceMemory::new(RtmConfig::RTM_512);
        b.insert(rec(10, &[(R1, 5)], &[(R2, 77)], 12));
        let outcome = RtmSnapshot::merge_detailed(&[a.export(), b.export()]).unwrap();
        assert_eq!(outcome.conflicts, 1);
        assert_eq!(outcome.snapshot.len(), 1);
        assert_eq!(outcome.snapshot.traces[0].outs.as_ref(), &[(R2, 77)]);
    }

    #[test]
    fn merge_rejects_geometry_mismatch_and_empty() {
        assert_eq!(RtmSnapshot::merge(&[]), Err(MergeError::Empty));
        let a = ReuseTraceMemory::new(RtmConfig::RTM_512).export();
        let b = ReuseTraceMemory::new(RtmConfig::RTM_4K).export();
        assert!(matches!(
            RtmSnapshot::merge(&[a, b]),
            Err(MergeError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn set_conflicts_evict_whole_pc_groups() {
        // 32 sets in RTM_512: PCs 0 and 32 share set 0. With 4 ways they
        // coexist; load 5 distinct PCs in the same set and one group goes.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for k in 0..5u32 {
            let pc = k * 32;
            rtm.insert(rec(pc, &[(R1, 1)], &[], pc + 1));
        }
        // PC 0 was the LRU group: gone.
        assert!(rtm.lookup(0, |_| 1).is_none());
        assert!(rtm.lookup(4 * 32, |_| 1).is_some());
    }

    #[test]
    fn export_import_roundtrip_preserves_contents_and_lru() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 0..4u64 {
            rtm.insert(rec(10, &[(R1, v)], &[(R2, v * 10)], 20));
        }
        rtm.insert(rec(42, &[(R1, 1)], &[], 43));
        // Touch v=0 so it is MRU; v=1 becomes the per-PC LRU.
        assert!(rtm.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());

        let snapshot = rtm.export();
        assert_eq!(snapshot.len(), 5);
        assert_eq!(snapshot.config, RtmConfig::RTM_512);

        let mut again = ReuseTraceMemory::import(&snapshot);
        assert_eq!(again.resident(), 5);
        assert_eq!(again.stats(), RtmStats::default());
        assert_eq!(again.export(), snapshot);
        // Replacement state carried over: a fifth trace at PC 10 must
        // evict v=1 (the LRU), exactly as it would have in the original.
        again.insert(rec(10, &[(R1, 99)], &[], 20));
        assert!(again.lookup(10, |l| if l == R1 { 0 } else { 9 }).is_some());
        assert!(again.lookup(10, |l| if l == R1 { 1 } else { 9 }).is_none());
    }

    #[test]
    fn snapshot_via_backend_trait() {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(7, &[(R1, 1)], &[(R2, 2)], 9));
        let backend: &dyn ReuseBackend = &rtm;
        let snap = backend.snapshot().expect("value-compare RTM snapshots");
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.traces[0].start_pc, 7);
    }

    #[test]
    fn empty_input_trace_always_hits() {
        // A trace with no live-ins (pure constant generation) matches any
        // state — the reuse test has nothing to compare.
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(10, &[], &[(R2, 1)], 13));
        assert!(rtm.lookup(10, |_| 12345).is_some());
    }
}
