//! Dynamic trace collection heuristics (§3.2, §4.6).
//!
//! The processor decides at run time which traces to record into the RTM.
//! Figure 9 evaluates three policies, implemented here:
//!
//! * **ILR NE** — a trace is a maximal run of instructions that are
//!   reusable at instruction level, as judged by a *finite* ILR buffer
//!   with the same entry count as the RTM. No expansion.
//! * **ILR EXP** — same, plus dynamic expansion: when two consecutive
//!   traces are reused back-to-back, or when the instructions following a
//!   reused trace turn out to be ILR-reusable, the reused trace is merged
//!   with what follows into a longer trace.
//! * **I(n) EXP** — traces are fixed runs of `n` instructions (any
//!   instructions, reusable or not); a reused trace is expanded with `n`
//!   further instructions.
//!
//! All policies respect the per-trace I/O caps: an instruction that would
//! push the live-in/live-out sets past the cap closes the current trace
//! and opens a new one.

use crate::ilr::FiniteIlrBuffer;
use crate::trace::{IoCaps, TraceAccum, TraceRecord};
use tlr_isa::DynInstr;

/// A trace-collection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heuristic {
    /// Maximal ILR-reusable runs, no expansion.
    IlrNe,
    /// Maximal ILR-reusable runs with dynamic expansion.
    IlrExp,
    /// Fixed-length traces of `n` instructions with expansion on reuse.
    FixedExp(u32),
    /// Dynamic basic blocks (a trace ends at every control-flow
    /// instruction), no expansion — Huang & Lilja's block reuse \[6\],
    /// which §2 calls "a particular case of trace-level reuse".
    BasicBlock,
}

impl Heuristic {
    /// Label as printed in Figure 9 ("ILR NE", "ILR EXP", "I4 EXP").
    pub fn label(&self) -> String {
        match self {
            Heuristic::IlrNe => "ILR NE".to_string(),
            Heuristic::IlrExp => "ILR EXP".to_string(),
            Heuristic::FixedExp(n) => format!("I{n} EXP"),
            Heuristic::BasicBlock => "BB".to_string(),
        }
    }

    /// The heuristic sweep of Figure 9: ILR NE, ILR EXP, I1..I8 EXP.
    pub fn paper_sweep() -> Vec<Heuristic> {
        let mut v = vec![Heuristic::IlrNe, Heuristic::IlrExp];
        v.extend((1..=8).map(Heuristic::FixedExp));
        v
    }

    /// `true` if the policy may expand reused traces.
    pub fn expands(&self) -> bool {
        !matches!(self, Heuristic::IlrNe | Heuristic::BasicBlock)
    }
}

/// Expansion in progress: a reused base trace waiting for its
/// continuation to be collected.
struct Expansion {
    base: TraceRecord,
    cont: TraceAccum,
    /// For `I(n) EXP`: stop after this many continuation instructions.
    /// `None` for ILR EXP (stop at the first non-reusable instruction).
    remaining: Option<u32>,
}

/// Collection statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Traces emitted by regular collection.
    pub collected: u64,
    /// Traces emitted by expansion (merges).
    pub expansions: u64,
    /// Traces closed early because of the I/O caps.
    pub cap_splits: u64,
}

/// The trace collector: converts the executed instruction stream plus
/// reuse-hit notifications into [`TraceRecord`]s for the RTM.
pub struct Collector {
    heuristic: Heuristic,
    caps: IoCaps,
    accum: TraceAccum,
    /// Finite ILR buffer (ILR NE / ILR EXP only).
    ilr: Option<FiniteIlrBuffer>,
    expansion: Option<Expansion>,
    stats: CollectStats,
    /// Scratch for emitted records (returned by value each call).
    out: Vec<TraceRecord>,
}

impl Collector {
    /// New collector. `ilr` must be provided for the ILR-driven
    /// heuristics (geometry should match the RTM, per §4.6).
    pub fn new(heuristic: Heuristic, caps: IoCaps, ilr: Option<FiniteIlrBuffer>) -> Self {
        if matches!(heuristic, Heuristic::IlrNe | Heuristic::IlrExp) {
            assert!(
                ilr.is_some(),
                "ILR-driven heuristics require a finite ILR buffer"
            );
        }
        Self {
            heuristic,
            caps,
            accum: TraceAccum::new(caps),
            ilr,
            expansion: None,
            stats: CollectStats::default(),
            out: Vec::new(),
        }
    }

    /// Collection statistics so far.
    pub fn stats(&self) -> CollectStats {
        self.stats
    }

    /// Feed one *executed* instruction. Returns the trace records that
    /// became complete as a consequence (0, 1 or 2).
    pub fn on_executed(&mut self, d: &DynInstr) -> Vec<TraceRecord> {
        debug_assert!(self.out.is_empty());
        match self.heuristic {
            Heuristic::IlrNe | Heuristic::IlrExp => {
                let reusable = self
                    .ilr
                    .as_mut()
                    .expect("checked at construction")
                    .probe_insert(d);
                self.step_expansion(d, reusable);
                if reusable {
                    self.push_to_accum(d);
                } else {
                    self.close_accum(false);
                }
            }
            Heuristic::FixedExp(n) => {
                self.step_expansion(d, true);
                self.push_to_accum(d);
                if self.accum.len() >= n {
                    self.close_accum(false);
                }
            }
            Heuristic::BasicBlock => {
                self.push_to_accum(d);
                // A dynamic basic block ends at (and includes) every
                // control-flow instruction.
                if d.is_branch() {
                    self.close_accum(false);
                }
            }
        }
        std::mem::take(&mut self.out)
    }

    /// Notify that the engine reused `hit` at the current fetch point.
    /// Returns completed trace records (closed partial collections and/or
    /// expansion merges).
    pub fn on_reuse_hit(&mut self, hit: &TraceRecord) -> Vec<TraceRecord> {
        debug_assert!(self.out.is_empty());
        // The run of executed instructions is interrupted: close the
        // in-progress trace (kept for ILR policies — it is a valid
        // maximal run; dropped for fixed-length policies, which only
        // store exact-length traces).
        match self.heuristic {
            Heuristic::IlrNe | Heuristic::IlrExp | Heuristic::BasicBlock => self.close_accum(false),
            Heuristic::FixedExp(_) => {
                let _ = self.accum.finalize();
            }
        }
        if !self.heuristic.expands() {
            return std::mem::take(&mut self.out);
        }
        // Expansion bookkeeping. A hit while a continuation is being
        // collected finishes that expansion first; a hit immediately
        // after a reused base (empty continuation) merges the two reused
        // traces ("two consecutive traces are reused").
        match self.expansion.take() {
            None => {
                self.begin_expansion(hit.clone());
            }
            Some(exp) => {
                if exp.cont.is_empty() {
                    match exp.base.merge(hit, &self.caps) {
                        Some(merged) => {
                            self.stats.expansions += 1;
                            self.out.push(merged.clone());
                            // Chain: the merged trace becomes the new base.
                            self.begin_expansion(merged);
                        }
                        None => {
                            // Caps exceeded: restart expansion from the hit.
                            self.begin_expansion(hit.clone());
                        }
                    }
                } else {
                    self.finish_expansion(exp);
                    self.begin_expansion(hit.clone());
                }
            }
        }
        std::mem::take(&mut self.out)
    }

    fn begin_expansion(&mut self, base: TraceRecord) {
        let remaining = match self.heuristic {
            Heuristic::FixedExp(n) => Some(n),
            _ => None,
        };
        self.expansion = Some(Expansion {
            base,
            cont: TraceAccum::new(self.caps),
            remaining,
        });
    }

    fn step_expansion(&mut self, d: &DynInstr, reusable: bool) {
        let Some(mut exp) = self.expansion.take() else {
            return;
        };
        // ILR EXP stops at the first non-reusable instruction.
        if exp.remaining.is_none() && !reusable {
            self.finish_expansion(exp);
            return;
        }
        if !exp.cont.try_add(d) {
            // Continuation no longer fits the caps: finish with what we
            // have.
            self.finish_expansion(exp);
            return;
        }
        if let Some(rem) = exp.remaining.as_mut() {
            *rem -= 1;
            if *rem == 0 {
                self.finish_expansion(exp);
                return;
            }
        }
        self.expansion = Some(exp);
    }

    fn finish_expansion(&mut self, mut exp: Expansion) {
        if let Some(cont) = exp.cont.finalize() {
            if let Some(merged) = exp.base.merge(&cont, &self.caps) {
                self.stats.expansions += 1;
                self.out.push(merged);
            }
        }
        self.expansion = None;
    }

    fn push_to_accum(&mut self, d: &DynInstr) {
        if !self.accum.try_add(d) {
            self.close_accum(true);
            // A single instruction always fits sane caps; if it does not
            // (pathological configuration), skip it rather than loop.
            let _ = self.accum.try_add(d);
        }
    }

    fn close_accum(&mut self, cap_split: bool) {
        if let Some(rec) = self.accum.finalize() {
            if cap_split {
                self.stats.cap_splits += 1;
            }
            self.stats.collected += 1;
            self.out.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilr::SetAssocGeometry;
    use tlr_isa::{Loc, OpClass};

    fn di(pc: u32, reads: &[(Loc, u64)], writes: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    fn big_ilr() -> FiniteIlrBuffer {
        FiniteIlrBuffer::new(SetAssocGeometry {
            sets: 64,
            ways: 8,
            per_pc: 16,
        })
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);

    #[test]
    fn heuristic_labels() {
        assert_eq!(Heuristic::IlrNe.label(), "ILR NE");
        assert_eq!(Heuristic::IlrExp.label(), "ILR EXP");
        assert_eq!(Heuristic::FixedExp(4).label(), "I4 EXP");
        assert_eq!(Heuristic::paper_sweep().len(), 10);
    }

    #[test]
    fn fixed_length_collects_every_n() {
        let mut c = Collector::new(Heuristic::FixedExp(3), IoCaps::PAPER, None);
        let mut emitted = Vec::new();
        for pc in 0..9u32 {
            emitted.extend(c.on_executed(&di(pc, &[], &[(R1, pc as u64)])));
        }
        assert_eq!(emitted.len(), 3);
        assert!(emitted.iter().all(|t| t.len == 3));
        assert_eq!(emitted[0].start_pc, 0);
        assert_eq!(emitted[1].start_pc, 3);
        assert_eq!(emitted[0].next_pc, 3);
        assert_eq!(c.stats().collected, 3);
    }

    #[test]
    fn ilr_ne_collects_maximal_reusable_runs() {
        let mut c = Collector::new(Heuristic::IlrNe, IoCaps::PAPER, Some(big_ilr()));
        let a = di(0, &[(R1, 1)], &[(R2, 2)]);
        let b = di(1, &[(R2, 2)], &[(R1, 3)]);
        // First pass: nothing reusable, nothing collected.
        assert!(c.on_executed(&a).is_empty());
        assert!(c.on_executed(&b).is_empty());
        // Second pass with identical values: both reusable — a trace
        // forms and is closed by the next non-reusable instruction.
        assert!(c.on_executed(&a).is_empty());
        assert!(c.on_executed(&b).is_empty());
        let fresh = di(2, &[(R1, 999)], &[]);
        let out = c.on_executed(&fresh);
        assert_eq!(out.len(), 1);
        let t = &out[0];
        assert_eq!(t.start_pc, 0);
        assert_eq!(t.len, 2);
        assert_eq!(t.ins.as_ref(), &[(R1, 1)]);
        assert_eq!(t.next_pc, 2);
    }

    #[test]
    fn reuse_hit_closes_partial_ilr_trace() {
        let mut c = Collector::new(Heuristic::IlrNe, IoCaps::PAPER, Some(big_ilr()));
        let a = di(0, &[(R1, 1)], &[(R2, 2)]);
        c.on_executed(&a);
        c.on_executed(&a); // now reusable → in accum
        let hit = TraceRecord {
            start_pc: 1,
            next_pc: 5,
            len: 4,
            ins: Box::new([]),
            outs: Box::new([]),
            mix: Default::default(),
        };
        let out = c.on_reuse_hit(&hit);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 1);
    }

    #[test]
    fn fixed_exp_expands_after_hit() {
        let mut c = Collector::new(Heuristic::FixedExp(2), IoCaps::PAPER, None);
        // Prime: collect a first trace of 2.
        let mut recs = Vec::new();
        recs.extend(c.on_executed(&di(0, &[], &[(R1, 1)])));
        recs.extend(c.on_executed(&di(1, &[], &[(R2, 2)])));
        assert_eq!(recs.len(), 1);
        let base = recs[0].clone();
        assert_eq!(base.next_pc, 2);
        // The engine reuses it; the next 2 executed instructions extend it.
        assert!(c.on_reuse_hit(&base).is_empty());
        assert!(c
            .on_executed(&di(2, &[], &[(Loc::IntReg(3), 3)]))
            .is_empty());
        let out = c.on_executed(&di(3, &[], &[(Loc::IntReg(4), 4)]));
        // Two records: the 4-long expansion merge and the regular 2-long
        // trace starting at pc 2.
        assert_eq!(out.len(), 2);
        let merged = out.iter().find(|t| t.len == 4).expect("merged trace");
        assert_eq!(merged.start_pc, 0);
        assert_eq!(merged.next_pc, 4);
        assert_eq!(c.stats().expansions, 1);
    }

    #[test]
    fn ilr_exp_merges_consecutive_hits() {
        let mut c = Collector::new(Heuristic::IlrExp, IoCaps::PAPER, Some(big_ilr()));
        let t1 = TraceRecord {
            start_pc: 0,
            next_pc: 3,
            len: 3,
            ins: vec![(R1, 1)].into_boxed_slice(),
            outs: vec![(R2, 2)].into_boxed_slice(),
            mix: Default::default(),
        };
        let t2 = TraceRecord {
            start_pc: 3,
            next_pc: 7,
            len: 4,
            ins: vec![(R2, 2)].into_boxed_slice(),
            outs: vec![(R1, 9)].into_boxed_slice(),
            mix: Default::default(),
        };
        assert!(c.on_reuse_hit(&t1).is_empty());
        let out = c.on_reuse_hit(&t2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 7);
        assert_eq!(out[0].start_pc, 0);
        assert_eq!(out[0].next_pc, 7);
        // Chaining: a third consecutive hit merges onto the merged trace.
        let t3 = TraceRecord {
            start_pc: 7,
            next_pc: 9,
            len: 2,
            ins: Box::new([]),
            outs: Box::new([]),
            mix: Default::default(),
        };
        let out = c.on_reuse_hit(&t3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 9);
    }

    #[test]
    fn ilr_exp_extends_hit_with_following_reusable_instrs() {
        let mut c = Collector::new(Heuristic::IlrExp, IoCaps::PAPER, Some(big_ilr()));
        // Teach the ILR buffer two instructions.
        let a = di(5, &[(R1, 1)], &[(R2, 2)]);
        let b = di(6, &[(R2, 2)], &[(Loc::IntReg(3), 3)]);
        c.on_executed(&a);
        c.on_executed(&b);
        // Reuse a trace ending right before pc 5.
        let base = TraceRecord {
            start_pc: 0,
            next_pc: 5,
            len: 3,
            ins: vec![(R1, 1)].into_boxed_slice(),
            outs: Box::new([]),
            mix: Default::default(),
        };
        assert!(c.on_reuse_hit(&base).is_empty());
        // Now a and b execute again (reusable) and then a fresh one ends
        // the continuation.
        assert!(c.on_executed(&a).is_empty());
        assert!(c.on_executed(&b).is_empty());
        let out = c.on_executed(&di(7, &[(R1, 42)], &[]));
        // Expansion merge (3+2=5) plus the regular collected run [a,b].
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .any(|t| t.len == 5 && t.start_pc == 0 && t.next_pc == 7));
        assert!(out.iter().any(|t| t.len == 2 && t.start_pc == 5));
    }

    #[test]
    fn ilr_ne_never_expands() {
        let mut c = Collector::new(Heuristic::IlrNe, IoCaps::PAPER, Some(big_ilr()));
        let t = TraceRecord {
            start_pc: 0,
            next_pc: 2,
            len: 2,
            ins: Box::new([]),
            outs: Box::new([]),
            mix: Default::default(),
        };
        assert!(c.on_reuse_hit(&t).is_empty());
        assert!(c.on_reuse_hit(&t).is_empty());
        assert_eq!(c.stats().expansions, 0);
    }

    #[test]
    fn cap_splits_open_new_trace() {
        // Caps allow one memory live-in: the second distinct load closes
        // the trace.
        let caps = IoCaps {
            reg_in: 8,
            mem_in: 1,
            reg_out: 8,
            mem_out: 4,
        };
        let mut c = Collector::new(Heuristic::FixedExp(8), caps, None);
        let l1 = di(0, &[(Loc::Mem(10), 1)], &[(R1, 1)]);
        let l2 = di(1, &[(Loc::Mem(11), 2)], &[(R2, 2)]);
        assert!(c.on_executed(&l1).is_empty());
        let out = c.on_executed(&l2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 1);
        assert_eq!(c.stats().cap_splits, 1);
    }

    #[test]
    #[should_panic(expected = "require a finite ILR buffer")]
    fn ilr_heuristic_requires_buffer() {
        let _ = Collector::new(Heuristic::IlrExp, IoCaps::PAPER, None);
    }
}
