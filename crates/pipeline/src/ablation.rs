//! Ablation driver: decompose the trace-level reuse win at the pipeline
//! level.
//!
//! The paper argues trace-level reuse wins over instruction-level reuse
//! for three reasons: (a) latency collapse of dependent chains, (b) fetch
//! bandwidth saving, (c) effective instruction-window growth. The limit
//! studies quantify (a) and (c); this driver quantifies (b) and (c)
//! *mechanistically* by toggling the pipeline's `fetch_skip` and
//! `trace_slots` knobs over the same workload.

use crate::model::{run_pipeline, PipeConfig, PipeStats, ReuseConfig};
use tlr_asm::Program;
use tlr_core::{Heuristic, RtmConfig};
use tlr_vm::VmError;

/// One ablation configuration and its outcome.
pub struct AblationRow {
    /// Human-readable configuration label.
    pub label: &'static str,
    /// Run outcome.
    pub stats: PipeStats,
}

/// Run the four-point ablation on one program: no reuse; full reuse
/// (fetch-skip on, 1 window slot per reused trace); reuse with fetch-skip
/// disabled (the trace still skips execution but burns fetch slots); and
/// reuse with 0-slot traces (ideal window bypass).
pub fn run_ablation(
    program: &Program,
    rtm: RtmConfig,
    heuristic: Heuristic,
    budget: u64,
) -> Result<Vec<AblationRow>, VmError> {
    let base = PipeConfig::default();
    let full = ReuseConfig::paper(rtm, heuristic);
    let rows = vec![
        AblationRow {
            label: "no reuse",
            stats: run_pipeline(program, base, budget)?,
        },
        AblationRow {
            label: "reuse (fetch-skip, 1 slot)",
            stats: run_pipeline(
                program,
                PipeConfig {
                    reuse: Some(full),
                    ..base
                },
                budget,
            )?,
        },
        AblationRow {
            label: "reuse, no fetch-skip",
            stats: run_pipeline(
                program,
                PipeConfig {
                    reuse: Some(ReuseConfig {
                        fetch_skip: false,
                        ..full
                    }),
                    ..base
                },
                budget,
            )?,
        },
        AblationRow {
            label: "reuse, 0-slot traces",
            stats: run_pipeline(
                program,
                PipeConfig {
                    reuse: Some(ReuseConfig {
                        trace_slots: 0,
                        ..full
                    }),
                    ..base
                },
                budget,
            )?,
        },
    ];
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;

    #[test]
    fn ablation_orders_sanely() {
        let prog = assemble(
            r#"
            .org 0x40
    t:      .word 3, 5, 7, 9
            li      r9, 300
    o:      li      r1, t
            li      r2, 4
            li      r5, 0
    i:      ldq     r3, 0(r1)
            addq    r5, r5, r3
            addq    r1, r1, 1
            subq    r2, r2, 1
            bnez    r2, i
            stq     r5, 32(zero)
            subq    r9, r9, 1
            bnez    r9, o
            halt
            "#,
        )
        .unwrap();
        let rows = run_ablation(&prog, RtmConfig::RTM_4K, Heuristic::FixedExp(4), 200_000).unwrap();
        assert_eq!(rows.len(), 4);
        let by_label = |l: &str| {
            rows.iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("missing row {l}"))
        };
        let no_reuse = by_label("no reuse");
        let full = by_label("reuse (fetch-skip, 1 slot)");
        let no_skip = by_label("reuse, no fetch-skip");
        let zero_slot = by_label("reuse, 0-slot traces");
        // Full reuse beats no reuse; removing fetch-skip can only hurt;
        // zero-slot traces can only help.
        assert!(full.stats.cycles <= no_reuse.stats.cycles);
        assert!(no_skip.stats.cycles >= full.stats.cycles);
        assert!(zero_slot.stats.cycles <= full.stats.cycles);
        // Architectural work identical everywhere.
        for r in &rows {
            assert_eq!(r.stats.instrs, no_reuse.stats.instrs, "{}", r.label);
        }
    }
}
