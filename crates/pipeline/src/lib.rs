#![warn(missing_docs)]
//! # tlr-pipeline
//!
//! A cycle-level superscalar processor model implementing §3's
//! "preliminary realistic implementation" of trace-level reuse
//! (Figure 2 of the paper): *fetch → decode/rename → window/issue →
//! execute → commit*, with the Reuse Trace Memory consulted at every
//! fetch point.
//!
//! On an RTM hit the processor:
//!
//! 1. redirects fetch to the trace's next-PC — the covered instructions
//!    are **never fetched** (saving fetch bandwidth);
//! 2. applies the trace's recorded outputs through a single reuse
//!    operation that occupies one window slot (configurably zero — the
//!    ideal-bypass ablation) and completes one reuse latency after the
//!    trace's live-in values are ready;
//! 3. keeps collecting traces around the hit per the configured
//!    heuristic (expansion included).
//!
//! The execution core models: finite fetch bandwidth, a finite
//! instruction window with in-order dispatch and in-order retirement,
//! dataflow-accurate operand readiness (register *and* memory
//! dependences), infinite functional units (as the paper assumes), and
//! perfect branch prediction (control effects are outside the paper's
//! scope).
//!
//! The model is execution-driven: it runs the real `tlr-vm` interpreter
//! underneath, so reused traces must actually match architectural state
//! — a wrong RTM hit would corrupt execution and fail the equivalence
//! tests.

mod ablation;
mod model;

pub use ablation::{run_ablation, AblationRow};
pub use model::{run_pipeline, PipeConfig, PipeStats, Pipeline, ReuseConfig};
