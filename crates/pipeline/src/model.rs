//! The pipeline model.

use tlr_asm::Program;
use tlr_core::{Collector, FiniteIlrBuffer, Heuristic, IoCaps, ReuseTraceMemory, RtmConfig};
use tlr_isa::{Alpha21164, DynInstr, LatencyModel, Loc};
use tlr_timing::CompletionTables;
use tlr_vm::{StepResult, Vm, VmError};

/// Reuse-side configuration of the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ReuseConfig {
    /// RTM geometry.
    pub rtm: RtmConfig,
    /// Trace-collection heuristic.
    pub heuristic: Heuristic,
    /// Per-trace I/O caps.
    pub caps: IoCaps,
    /// Cycles a reuse operation takes once the trace's live-ins are
    /// ready (the valid-bit style test; §3.3).
    pub reuse_latency: u64,
    /// Window slots a reused trace occupies (1 = the paper's
    /// precise-exception reuse op; 0 = ideal bypass).
    pub trace_slots: u32,
    /// Whether reused traces skip the fetch stage. Disabling this is an
    /// ablation: the trace still skips *execution* but its instructions
    /// consume fetch slots, isolating the fetch-bandwidth benefit the
    /// paper claims for trace-level (vs instruction-level) reuse.
    pub fetch_skip: bool,
}

impl ReuseConfig {
    /// The paper's §3 arrangement over a given RTM/heuristic.
    pub fn paper(rtm: RtmConfig, heuristic: Heuristic) -> Self {
        Self {
            rtm,
            heuristic,
            caps: IoCaps::PAPER,
            reuse_latency: 1,
            trace_slots: 1,
            fetch_skip: true,
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipeConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instruction-window entries (in-flight limit).
    pub window: usize,
    /// Optional reuse machinery.
    pub reuse: Option<ReuseConfig>,
}

impl Default for PipeConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            window: 256,
            reuse: None,
        }
    }
}

/// Run statistics.
#[derive(Clone, Debug, Default)]
pub struct PipeStats {
    /// Architectural instructions retired (executed + reused).
    pub instrs: u64,
    /// Instructions that went through fetch (reused+skipped ones do not).
    pub fetched: u64,
    /// Instructions covered by reuse hits.
    pub reused_instrs: u64,
    /// Reuse operations taken.
    pub reuse_ops: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Whether the program halted within budget.
    pub halted: bool,
}

impl PipeStats {
    /// Retired architectural instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// Fetch-bandwidth saving: fraction of architectural instructions
    /// that never consumed a fetch slot.
    pub fn fetch_saving(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            1.0 - self.fetched as f64 / self.instrs as f64
        }
    }
}

/// In-order-retire window: ring of retirement cycles.
struct RetireRing {
    ring: Vec<u64>,
    issued: u64,
    last_retire: u64,
}

impl RetireRing {
    fn new(size: usize) -> Self {
        Self {
            ring: vec![0; size],
            issued: 0,
            last_retire: 0,
        }
    }

    /// Earliest cycle at which a new op can claim a window slot: the
    /// retirement cycle of the op `window` slots ago.
    fn slot_free_at(&self) -> u64 {
        if (self.issued as usize) < self.ring.len() {
            0
        } else {
            self.ring[(self.issued as usize) % self.ring.len()]
        }
    }

    /// Occupy a slot for an op completing at `complete`; retirement is
    /// in order.
    fn occupy(&mut self, complete: u64) -> u64 {
        self.last_retire = self.last_retire.max(complete);
        let idx = (self.issued as usize) % self.ring.len();
        self.ring[idx] = self.last_retire;
        self.issued += 1;
        self.last_retire
    }
}

/// The execution-driven pipeline.
pub struct Pipeline {
    vm: Vm,
    config: PipeConfig,
    latency: Alpha21164,
    tables: CompletionTables,
    ring: RetireRing,
    /// Cycle at which the next fetch slot is available, per slot counting.
    fetch_slot: u64,
    /// Fetch redirect point: earliest fetch cycle (advanced by reuse
    /// repair / nothing else under perfect prediction).
    rtm: Option<ReuseTraceMemory>,
    collector: Option<Collector>,
    stats: PipeStats,
    max_cycle: u64,
}

impl Pipeline {
    /// Load a program.
    pub fn new(program: &Program, config: PipeConfig) -> Self {
        let (rtm, collector) = match config.reuse {
            None => (None, None),
            Some(rc) => {
                let ilr = match rc.heuristic {
                    Heuristic::IlrNe | Heuristic::IlrExp => {
                        Some(FiniteIlrBuffer::new(rc.rtm.geometry))
                    }
                    Heuristic::FixedExp(_) | Heuristic::BasicBlock => None,
                };
                (
                    Some(ReuseTraceMemory::new(rc.rtm)),
                    Some(Collector::new(rc.heuristic, rc.caps, ilr)),
                )
            }
        };
        Self {
            vm: Vm::new(program),
            config,
            latency: Alpha21164,
            tables: CompletionTables::new(),
            ring: RetireRing::new(config.window),
            fetch_slot: 0,
            rtm,
            collector,
            stats: PipeStats::default(),
            max_cycle: 0,
        }
    }

    /// Cycle at which fetch slot number `n` is available.
    #[inline]
    fn fetch_cycle_for(&mut self) -> u64 {
        let c = self.fetch_slot / self.config.fetch_width as u64;
        self.fetch_slot += 1;
        c
    }

    fn dispatch_normal(&mut self, d: &DynInstr) {
        let fetch_c = self.fetch_cycle_for();
        let slot_c = self.ring.slot_free_at();
        let dispatch_c = fetch_c.max(slot_c);
        let ready = self.tables.max_over_reads(&d.reads).max(dispatch_c);
        let complete = ready + self.latency.latency(d.class);
        for (loc, _) in d.writes.iter() {
            self.tables.set(*loc, complete);
        }
        let retired = self.ring.occupy(complete);
        self.max_cycle = self.max_cycle.max(retired);
        self.stats.fetched += 1;
        self.stats.instrs += 1;
    }

    fn dispatch_reuse(&mut self, live_ins: &[(Loc, u64)], outs: &[(Loc, u64)], len: u32) {
        let rc = self.config.reuse.expect("reuse dispatch without config");
        // The reuse op consumes one fetch slot (the trace body none, when
        // fetch_skip is on).
        let fetch_c = self.fetch_cycle_for();
        if !rc.fetch_skip {
            // Ablation: burn fetch slots for the whole body anyway.
            for _ in 1..len {
                let _ = self.fetch_cycle_for();
            }
            self.stats.fetched += len as u64 - 1;
        }
        let slot_c = self.ring.slot_free_at();
        let dispatch_c = fetch_c.max(slot_c);
        let ready = self
            .tables
            .max_over_locs(live_ins.iter().map(|(l, _)| l))
            .max(dispatch_c);
        let complete = ready + rc.reuse_latency;
        for (loc, _) in outs.iter() {
            self.tables.set(*loc, complete);
        }
        let mut retired = complete;
        for _ in 0..rc.trace_slots {
            retired = self.ring.occupy(complete);
        }
        self.max_cycle = self.max_cycle.max(retired);
        self.stats.fetched += 1;
        self.stats.instrs += len as u64;
        self.stats.reused_instrs += len as u64;
        self.stats.reuse_ops += 1;
    }

    /// Run until `halt` or `budget` architectural instructions.
    pub fn run(&mut self, budget: u64) -> Result<PipeStats, VmError> {
        while self.stats.instrs < budget && !self.stats.halted {
            // Fetch-stage RTM probe.
            if self.rtm.is_some() {
                let pc = self.vm.pc();
                let vm = &self.vm;
                let hit = self
                    .rtm
                    .as_mut()
                    .unwrap()
                    .lookup(pc, |loc| vm.peek_loc(loc));
                if let Some(hit) = hit {
                    self.vm.apply_trace(hit.outs.iter().copied(), hit.next_pc)?;
                    self.dispatch_reuse(&hit.ins, &hit.outs, hit.len);
                    let recs = self.collector.as_mut().unwrap().on_reuse_hit(&hit);
                    for rec in recs {
                        self.rtm.as_mut().unwrap().insert(rec);
                    }
                    continue;
                }
            }
            match self.vm.step()? {
                StepResult::Executed(d) => {
                    self.dispatch_normal(&d);
                    if let Some(collector) = self.collector.as_mut() {
                        for rec in collector.on_executed(&d) {
                            self.rtm.as_mut().unwrap().insert(rec);
                        }
                    }
                }
                StepResult::Halted => self.stats.halted = true,
            }
        }
        self.stats.cycles = self.max_cycle;
        Ok(self.stats.clone())
    }

    /// Final architectural state probe (equivalence tests).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }
}

/// Convenience: run `program` under `config` for `budget` instructions.
pub fn run_pipeline(
    program: &Program,
    config: PipeConfig,
    budget: u64,
) -> Result<PipeStats, VmError> {
    Pipeline::new(program, config).run(budget)
}

/// Map of per-location final values for equivalence checking.
#[cfg(test)]
pub(crate) fn arch_fingerprint(vm: &Vm, locs: &[Loc]) -> tlr_util::FxHashMap<Loc, u64> {
    locs.iter().map(|l| (*l, vm.peek_loc(*l))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;

    const KERNEL: &str = r#"
            .org 0x80
    tab:    .word 2, 4, 6, 8, 10, 12, 14, 16
            li      r9, 400
    outer:  li      r1, tab
            li      r2, 8
            li      r5, 0
    inner:  ldq     r3, 0(r1)
            mulq    r4, r3, r3
            addq    r5, r5, r4
            addq    r1, r1, 1
            subq    r2, r2, 1
            bnez    r2, inner
            stq     r5, 64(zero)
            subq    r9, r9, 1
            bnez    r9, outer
            halt
    "#;

    #[test]
    fn baseline_ipc_is_bounded_by_fetch_width() {
        let prog = assemble(KERNEL).unwrap();
        let stats = run_pipeline(&prog, PipeConfig::default(), 100_000).unwrap();
        assert!(stats.halted);
        assert!(stats.ipc() > 0.1);
        assert!(
            stats.ipc() <= 4.0 + 1e-9,
            "ipc {} exceeds fetch width",
            stats.ipc()
        );
        assert_eq!(stats.fetched, stats.instrs);
        assert_eq!(stats.reuse_ops, 0);
    }

    #[test]
    fn narrower_fetch_is_slower() {
        let prog = assemble(KERNEL).unwrap();
        let wide = run_pipeline(
            &prog,
            PipeConfig {
                fetch_width: 8,
                ..Default::default()
            },
            100_000,
        )
        .unwrap();
        let narrow = run_pipeline(
            &prog,
            PipeConfig {
                fetch_width: 1,
                ..Default::default()
            },
            100_000,
        )
        .unwrap();
        assert!(narrow.cycles > wide.cycles);
    }

    #[test]
    fn reuse_raises_ipc_and_saves_fetch() {
        let prog = assemble(KERNEL).unwrap();
        let base = run_pipeline(&prog, PipeConfig::default(), 200_000).unwrap();
        let reuse = run_pipeline(
            &prog,
            PipeConfig {
                reuse: Some(ReuseConfig::paper(
                    RtmConfig::RTM_4K,
                    Heuristic::FixedExp(4),
                )),
                ..Default::default()
            },
            200_000,
        )
        .unwrap();
        assert!(reuse.reuse_ops > 0);
        assert!(
            reuse.fetch_saving() > 0.2,
            "saving {}",
            reuse.fetch_saving()
        );
        assert!(
            reuse.ipc() > base.ipc(),
            "reuse ipc {} <= base ipc {}",
            reuse.ipc(),
            base.ipc()
        );
        // IPC may exceed fetch width: reused instructions bypass fetch.
        assert_eq!(base.instrs, reuse.instrs, "same architectural work");
    }

    #[test]
    fn reuse_preserves_final_state() {
        let prog = assemble(KERNEL).unwrap();
        let mut base = Pipeline::new(&prog, PipeConfig::default());
        base.run(1_000_000).unwrap();
        let mut reuse = Pipeline::new(
            &prog,
            PipeConfig {
                reuse: Some(ReuseConfig::paper(RtmConfig::RTM_512, Heuristic::IlrExp)),
                ..Default::default()
            },
        );
        reuse.run(1_000_000).unwrap();
        let locs = [Loc::Mem(64), Loc::IntReg(5), Loc::IntReg(9)];
        assert_eq!(
            arch_fingerprint(base.vm(), &locs),
            arch_fingerprint(reuse.vm(), &locs)
        );
    }

    #[test]
    fn fetch_skip_ablation_costs_bandwidth() {
        let prog = assemble(KERNEL).unwrap();
        let mk = |fetch_skip| PipeConfig {
            fetch_width: 2,
            reuse: Some(ReuseConfig {
                fetch_skip,
                ..ReuseConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4))
            }),
            ..Default::default()
        };
        let skipping = run_pipeline(&prog, mk(true), 200_000).unwrap();
        let fetching = run_pipeline(&prog, mk(false), 200_000).unwrap();
        assert!(fetching.fetched > skipping.fetched);
        assert!(
            fetching.cycles >= skipping.cycles,
            "fetching all instructions must not be faster"
        );
    }
}
