//! Decant properties: the sum-to-total conservation invariant over
//! arbitrary decision streams (including half-attributed and zero-mix
//! hits and capped logs), and loop-detector structure over generated
//! nested / irreducible-ish control flow.

use proptest::prelude::*;
use tlr_core::{DecisionLog, ReuseEvent};
use tlr_decant::{decant, LoopDetector, LoopShape};
use tlr_isa::{ClassMix, OpClass, UnitLatency};

fn event_strategy() -> impl Strategy<Value = ReuseEvent> {
    let exec = (0u32..64, 0usize..OpClass::COUNT).prop_map(|(pc, class)| ReuseEvent::Exec {
        pc,
        class: OpClass::ALL[class],
    });
    // Hits whose mix covers anywhere from none (legacy zero-mix
    // records) to all of `len`.
    let hit = (0u32..64, 1u32..8, 0u32..64, 0usize..OpClass::COUNT, 0u32..9).prop_map(
        |(pc, len, next_pc, class, cover)| {
            let mut counts = [0u32; OpClass::COUNT];
            counts[class] = cover.min(len);
            ReuseEvent::Hit {
                pc,
                len,
                next_pc,
                mix: ClassMix::from_counts(counts),
            }
        },
    );
    prop_oneof![exec, hit]
}

proptest! {
    #[test]
    fn attribution_conserves_log_totals(
        events in proptest::collection::vec(event_strategy(), 0..200),
        cap in prop_oneof![Just(usize::MAX), Just(50usize)],
    ) {
        let mut log = DecisionLog::with_cap(cap);
        for e in &events {
            log.push(*e);
        }
        let a = decant(&log);
        prop_assert!(a.verify(&log).is_ok(), "{:?}", a.verify(&log));

        // Independent recomputation of both axes.
        let mut skipped = 0u64;
        let mut executed = 0u64;
        for e in &log.events {
            match e {
                ReuseEvent::Exec { .. } => executed += 1,
                ReuseEvent::Hit { len, .. } => skipped += u64::from(*len),
            }
        }
        prop_assert_eq!(a.executed, executed);
        prop_assert_eq!(a.skipped, skipped);
        prop_assert_eq!(
            a.skip_by_class.iter().sum::<u64>() + a.unattributed,
            skipped
        );
        prop_assert_eq!(a.exec_by_class.iter().sum::<u64>(), executed);
        // Under unit latency, attributed saved cycles are exactly the
        // attributed (non-legacy) skip count.
        prop_assert_eq!(a.saved_cycles(&UnitLatency), skipped - a.unattributed);
    }

    #[test]
    fn detector_depth_matches_shape_over_arbitrary_streams(
        pcs in proptest::collection::vec(0u32..32, 1..300),
    ) {
        let mut detector = LoopDetector::new();
        for &pc in &pcs {
            let ctx = detector.observe(pc);
            match ctx.shape {
                LoopShape::StraightLine => prop_assert_eq!(ctx.depth, 0),
                LoopShape::LoopHeader | LoopShape::LoopBody => {
                    prop_assert!(ctx.depth >= 1, "loop context with depth 0")
                }
            }
            prop_assert_eq!(ctx.depth, detector.depth());
        }
    }

    #[test]
    fn nested_counted_loops_reach_their_nesting_depth(
        depths in 1usize..5,
        iters in 2u32..4,
    ) {
        // Perfectly nested counted loops: level k spans PCs
        // [10*(k+1), 100-10*k], so each inner loop sits strictly inside
        // its parent's range. Each level runs `iters` iterations of the
        // next. Emit the PC stream by recursion, then check the
        // detector reaches the full nesting depth once every loop has
        // shown its back edge.
        fn emit(stream: &mut Vec<u32>, level: usize, depths: usize, iters: u32) {
            let header = 10 * (level as u32 + 1);
            let bottom = 100 - 10 * level as u32;
            for _ in 0..iters {
                stream.push(header);
                if level + 1 < depths {
                    emit(stream, level + 1, depths, iters);
                }
                stream.push(bottom); // loop bottom (back-edge source)
            }
        }
        let mut stream = Vec::new();
        emit(&mut stream, 0, depths, iters);
        let mut detector = LoopDetector::new();
        let mut max_depth = 0;
        for &pc in &stream {
            max_depth = max_depth.max(detector.observe(pc).depth);
        }
        prop_assert_eq!(max_depth, depths, "nesting depth never fully recognized");
    }

    #[test]
    fn irreducible_multi_entry_flow_never_wedges_the_detector(
        // Jumps straight into loop middles: alternate between two
        // overlapping cycles sharing a body, an irreducible region.
        rounds in 1usize..20,
    ) {
        let mut detector = LoopDetector::new();
        let mut stream = Vec::new();
        for r in 0..rounds {
            // Cycle A: 10 → 11 → 12 → 10. Cycle B: 11 → 12 → 13 → 11.
            if r % 2 == 0 {
                stream.extend_from_slice(&[10, 11, 12]);
            } else {
                stream.extend_from_slice(&[11, 12, 13]);
            }
        }
        stream.push(40); // leave the region entirely
        for &pc in &stream {
            let ctx = detector.observe(pc);
            prop_assert!(ctx.depth <= stream.len(), "depth diverged");
        }
        prop_assert_eq!(
            detector.observe(41).shape,
            LoopShape::StraightLine,
            "detector stuck inside the irreducible region"
        );
    }
}
