#![warn(missing_docs)]
//! # tlr-decant
//!
//! Reuse-**attribution** analysis: decant the engine's decision log
//! ([`tlr_core::DecisionLog`], the tap recording every reuse decision
//! in fetch order) into *who benefits from trace-level reuse* along two
//! axes:
//!
//! * **Opcode class** ([`tlr_isa::OpClass`]) — each reuse hit's skipped
//!   instructions are split by the trace's recorded per-class mix
//!   ([`tlr_isa::ClassMix`]), each miss by the executed instruction's
//!   class. Priced under a [`tlr_isa::LatencyModel`] this yields saved
//!   cycles per class.
//! * **Loop structure** — a streaming back-edge detector
//!   ([`LoopDetector`]) recovers dynamic loop nesting from the fetch-PC
//!   stream and classifies every decision as loop-header, loop-body or
//!   straight-line, with nesting depth.
//!
//! The subsystem's contract is **exact conservation**: attributed
//! counts sum to the log's totals with no remainder on either axis
//! ([`Attribution::verify`]; hits on traces imported from pre-mix
//! snapshots land in an explicit *unattributed* bucket rather than
//! being guessed). Attribution output also feeds back into policy:
//! [`Attribution::class_weights`] turns measured per-class saved cycles
//! into a [`tlr_core::ClassWeights`] table for
//! [`tlr_core::ReplacementPolicy::CostBenefitMeasured`], closing the
//! tap → decant → policy-weights loop.
//!
//! ```
//! use tlr_core::{EngineConfig, Heuristic, RtmConfig, TraceReuseEngine};
//! use tlr_isa::Alpha21164;
//!
//! let program = tlr_asm::assemble(
//!     "        li   r1, 50\n\
//!      loop:   subq r1, r1, 1\n\
//!              bnez r1, loop\n\
//!              halt\n",
//! )
//! .unwrap();
//! let mut engine = TraceReuseEngine::new(
//!     &program,
//!     EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
//! );
//! engine.enable_tap();
//! engine.run(10_000).unwrap();
//!
//! let log = engine.tap().expect("tap enabled");
//! let attribution = tlr_decant::decant(log);
//! attribution.verify(log).expect("attribution conserves totals");
//! println!("{}", attribution.class_table(&Alpha21164).to_text());
//! println!("{}", attribution.loop_table().to_text());
//! ```

pub mod attribution;
pub mod loops;

pub use attribution::{decant, Attribution, ShapeBucket};
pub use loops::{LoopContext, LoopDetector, LoopShape};
