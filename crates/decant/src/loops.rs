//! Dynamic loop detection over the fetch-PC stream.
//!
//! The decision log records *where* every reuse decision happened but
//! not the program's static control-flow graph, so loop structure is
//! recovered the way trace-profiling tools do it: a **back edge** is a
//! fetch whose PC does not advance (`pc <= previous pc`), its target is
//! a loop header, and the loop extends to the largest PC observed to
//! jump back to that header. Active loops form a stack — nesting — and
//! every decision is classified against it.
//!
//! Being dynamic, the detector only knows a loop *after its first back
//! edge*: the first iteration of a loop body is classified as
//! straight-line code (or as the enclosing loop's body). All later
//! iterations land in the right bucket, so on loop-dominated workloads
//! the first-iteration slack is noise. Irreducible-looking flows —
//! a back edge into the middle of an active loop's body — simply push
//! a new span and classify under it; nothing wedges or misnests.

/// Loop-structural position of one reuse decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoopShape {
    /// No active loop encloses this PC.
    StraightLine,
    /// The target of a back edge, at the moment an iteration restarts.
    LoopHeader,
    /// Inside an active loop's span, past its header.
    LoopBody,
}

impl LoopShape {
    /// Every shape, in display order.
    pub const ALL: [LoopShape; 3] = [
        LoopShape::StraightLine,
        LoopShape::LoopHeader,
        LoopShape::LoopBody,
    ];

    /// Stable dense index (position in [`LoopShape::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            LoopShape::StraightLine => "straight-line",
            LoopShape::LoopHeader => "loop-header",
            LoopShape::LoopBody => "loop-body",
        }
    }
}

impl std::fmt::Display for LoopShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where one observed PC sits in the loop structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopContext {
    /// Structural position.
    pub shape: LoopShape,
    /// Loop-nesting depth (0 = straight-line; a header counts its own
    /// loop, so the innermost header of a doubly nested loop reports 2).
    pub depth: usize,
}

/// One active loop: its back-edge target and the largest PC seen to
/// jump back to it (the loop's known bottom).
#[derive(Clone, Copy, Debug)]
struct Span {
    header: u32,
    limit: u32,
}

/// Streaming back-edge detector; feed it every decision's fetch PC in
/// order via [`LoopDetector::observe`].
#[derive(Clone, Debug, Default)]
pub struct LoopDetector {
    spans: Vec<Span>,
    prev: Option<u32>,
}

impl LoopDetector {
    /// A detector with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of loops currently active.
    pub fn depth(&self) -> usize {
        self.spans.len()
    }

    /// Classify the next fetch PC of the dynamic stream.
    pub fn observe(&mut self, pc: u32) -> LoopContext {
        let context = match self.prev {
            // A non-advancing fetch is a back edge targeting `pc`.
            Some(prev) if pc <= prev => {
                if let Some(pos) = self.spans.iter().rposition(|s| s.header == pc) {
                    // Another iteration of an active loop: everything
                    // nested inside it is over.
                    self.spans.truncate(pos + 1);
                    self.spans[pos].limit = self.spans[pos].limit.max(prev);
                } else {
                    // First back edge of a new (possibly irreducible)
                    // loop: it nests inside whatever is active.
                    self.spans.push(Span {
                        header: pc,
                        limit: prev,
                    });
                }
                LoopContext {
                    shape: LoopShape::LoopHeader,
                    depth: self.spans.len(),
                }
            }
            _ => {
                // Forward progress: loops whose known bottom we passed
                // are exited.
                while self.spans.last().is_some_and(|s| pc > s.limit) {
                    self.spans.pop();
                }
                LoopContext {
                    shape: if self.spans.is_empty() {
                        LoopShape::StraightLine
                    } else {
                        LoopShape::LoopBody
                    },
                    depth: self.spans.len(),
                }
            }
        };
        self.prev = Some(pc);
        context
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(pcs: &[u32]) -> Vec<(LoopShape, usize)> {
        let mut detector = LoopDetector::new();
        pcs.iter()
            .map(|&pc| {
                let c = detector.observe(pc);
                (c.shape, c.depth)
            })
            .collect()
    }

    #[test]
    fn straight_line_never_claims_a_loop() {
        for (shape, depth) in shapes(&[0, 1, 2, 7, 30]) {
            assert_eq!(shape, LoopShape::StraightLine);
            assert_eq!(depth, 0);
        }
    }

    #[test]
    fn simple_loop_classifies_after_first_back_edge() {
        // for-loop at 10..=12, then fall-through to 13.
        let got = shapes(&[10, 11, 12, 10, 11, 12, 10, 11, 12, 13]);
        assert_eq!(
            got,
            vec![
                (LoopShape::StraightLine, 0), // first iteration: unknown loop
                (LoopShape::StraightLine, 0),
                (LoopShape::StraightLine, 0),
                (LoopShape::LoopHeader, 1), // back edge seen
                (LoopShape::LoopBody, 1),
                (LoopShape::LoopBody, 1),
                (LoopShape::LoopHeader, 1),
                (LoopShape::LoopBody, 1),
                (LoopShape::LoopBody, 1),
                (LoopShape::StraightLine, 0), // past the known bottom
            ]
        );
    }

    #[test]
    fn self_loop_is_a_header_every_time() {
        let got = shapes(&[5, 5, 5, 6]);
        assert_eq!(
            got,
            vec![
                (LoopShape::StraightLine, 0),
                (LoopShape::LoopHeader, 1),
                (LoopShape::LoopHeader, 1),
                (LoopShape::StraightLine, 0),
            ]
        );
    }

    #[test]
    fn nested_loops_report_their_depth() {
        // outer 10..=40 (bottom 40), inner 20..=22: run the inner loop
        // twice per outer iteration, across two outer iterations.
        let iteration = [10u32, 20, 21, 22, 20, 21, 22, 40];
        let mut stream: Vec<u32> = iteration.to_vec();
        stream.extend_from_slice(&iteration);
        stream.push(41); // exit everything
        let got = shapes(&stream);
        // Second outer iteration: outer header known, inner nests at 2.
        assert_eq!(got[8], (LoopShape::LoopHeader, 1), "outer header");
        assert_eq!(got[9], (LoopShape::LoopBody, 1), "first inner pass");
        assert_eq!(got[12], (LoopShape::LoopHeader, 2), "inner header nested");
        assert_eq!(got[13], (LoopShape::LoopBody, 2), "inner body nested");
        assert_eq!(got[15], (LoopShape::LoopBody, 1), "outer bottom");
        assert_eq!(*got.last().unwrap(), (LoopShape::StraightLine, 0), "exit");
    }

    #[test]
    fn irreducible_back_edge_into_a_body_nests_instead_of_wedging() {
        // A back edge to 15 (not a stacked header) while loop @10 is
        // active: pushes a nested span, and re-iterating 10 pops it.
        let got = shapes(&[10, 15, 20, 10, 15, 20, 15, 16, 10, 11]);
        assert_eq!(got[3], (LoopShape::LoopHeader, 1), "loop @10 established");
        assert_eq!(got[6], (LoopShape::LoopHeader, 2), "irreducible target @15");
        assert_eq!(got[7], (LoopShape::LoopBody, 2));
        assert_eq!(
            got[8],
            (LoopShape::LoopHeader, 1),
            "outer iteration pops it"
        );
        assert_eq!(got[9], (LoopShape::LoopBody, 1));
    }

    #[test]
    fn back_edge_source_extends_the_loop_bottom() {
        // The second back edge comes from further down (14 instead of
        // 12): 13–14 look like an exit at first, but once a back edge
        // from 14 is seen the loop's known bottom grows to cover them.
        let got = shapes(&[10, 11, 12, 10, 13, 14, 10, 13, 14]);
        assert_eq!(got[3], (LoopShape::LoopHeader, 1), "bottom 12 established");
        assert_eq!(
            got[4],
            (LoopShape::StraightLine, 0),
            "13 beyond known bottom"
        );
        assert_eq!(got[6], (LoopShape::LoopHeader, 1), "back edge from 14");
        assert_eq!(got[7], (LoopShape::LoopBody, 1), "bottom grew to 14");
        assert_eq!(got[8], (LoopShape::LoopBody, 1));
    }
}
