//! Decanting a [`DecisionLog`] into per-class / per-loop-structure
//! attribution.
//!
//! The central invariant — checked by [`Attribution::verify`] and
//! property-tested — is **exact conservation**: every instruction the
//! log accounts for lands in exactly one bucket on each axis.
//!
//! * By class: `Σ exec_by_class == executed`, and
//!   `Σ skip_by_class + unattributed == skipped` (the unattributed
//!   tail is nonzero only for hits on traces imported from pre-mix
//!   snapshots, whose per-class histogram was never recorded).
//! * By loop structure: the three [`LoopShape`] buckets partition both
//!   `executed` and `skipped` with no remainder.

use crate::loops::{LoopDetector, LoopShape};
use tlr_core::{ClassWeights, DecisionLog, ReuseEvent};
use tlr_isa::{LatencyModel, OpClass};
use tlr_stats::{fnum, Histogram, Table};

/// Executed/skipped totals of one loop-structure bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShapeBucket {
    /// Instructions executed (reuse-test misses) in this context.
    pub executed: u64,
    /// Instructions covered by reuse hits taken in this context.
    pub skipped: u64,
    /// Reuse hits taken in this context.
    pub reuse_ops: u64,
}

impl ShapeBucket {
    /// Share of this bucket's instructions that were reused, in percent.
    pub fn pct_reused(&self) -> f64 {
        let total = self.executed + self.skipped;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64 * 100.0
        }
    }
}

/// Full attribution of one decision log: who benefited from reuse, by
/// opcode class and by loop structure. Built by [`decant`].
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Executed (missed) instructions per opcode class.
    pub exec_by_class: [u64; OpClass::COUNT],
    /// Reuse-skipped instructions per opcode class.
    pub skip_by_class: [u64; OpClass::COUNT],
    /// Skipped instructions whose class is unknown (hits on traces from
    /// snapshots written before class mixes existed).
    pub unattributed: u64,
    /// Total instructions executed (== number of `Exec` events).
    pub executed: u64,
    /// Total instructions covered by reuse hits.
    pub skipped: u64,
    /// Reuse hits taken.
    pub reuse_ops: u64,
    /// Decisions the log dropped at its cap — *not* attributed; an
    /// attribution of a truncated log is explicitly partial.
    pub dropped: u64,
    /// Per-loop-structure totals, indexed by [`LoopShape::index`].
    pub shapes: [ShapeBucket; LoopShape::ALL.len()],
    /// Loop-nesting depth of each reuse hit taken.
    pub hit_depth: Histogram,
}

/// Decant `log` into an [`Attribution`]: one pass over the decision
/// stream, driving a [`LoopDetector`] with every fetch PC in order.
///
/// A reuse hit is attributed to the loop context of its *start* PC (the
/// PC the reuse test answered); its skipped instructions are split
/// across opcode classes by the trace's recorded mix.
pub fn decant(log: &DecisionLog) -> Attribution {
    let mut a = Attribution {
        exec_by_class: [0; OpClass::COUNT],
        skip_by_class: [0; OpClass::COUNT],
        unattributed: 0,
        executed: 0,
        skipped: 0,
        reuse_ops: 0,
        dropped: log.dropped,
        shapes: Default::default(),
        hit_depth: Histogram::new(),
    };
    let mut detector = LoopDetector::new();
    for event in &log.events {
        match *event {
            ReuseEvent::Exec { pc, class } => {
                let ctx = detector.observe(pc);
                a.exec_by_class[class.index()] += 1;
                a.executed += 1;
                a.shapes[ctx.shape.index()].executed += 1;
            }
            ReuseEvent::Hit { pc, len, mix, .. } => {
                let ctx = detector.observe(pc);
                for (class, n) in mix.iter() {
                    a.skip_by_class[class.index()] += u64::from(n);
                }
                a.unattributed += u64::from(len).saturating_sub(mix.total());
                a.skipped += u64::from(len);
                a.reuse_ops += 1;
                let bucket = &mut a.shapes[ctx.shape.index()];
                bucket.skipped += u64::from(len);
                bucket.reuse_ops += 1;
                a.hit_depth.record(ctx.depth as u64);
            }
        }
    }
    a
}

impl Attribution {
    /// Total instructions the attribution accounts for.
    pub fn total(&self) -> u64 {
        self.executed + self.skipped
    }

    /// Share of all instructions covered by reuse, in percent.
    pub fn pct_reused(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.skipped as f64 / self.total() as f64 * 100.0
        }
    }

    /// Cycles the attributed reuse hits saved under `model` (the
    /// unattributed tail is priced at nothing — it cannot be priced).
    pub fn saved_cycles(&self, model: &dyn LatencyModel) -> u64 {
        OpClass::ALL
            .iter()
            .map(|&c| self.skip_by_class[c.index()].saturating_mul(model.latency(c)))
            .fold(0u64, u64::saturating_add)
    }

    /// Check exact conservation against `log` (see the module docs):
    /// both class axes and the loop-structure axis must sum to the
    /// log's own totals, with nothing lost and nothing invented.
    pub fn verify(&self, log: &DecisionLog) -> Result<(), String> {
        let mut executed = 0u64;
        let mut skipped = 0u64;
        let mut reuse_ops = 0u64;
        for event in &log.events {
            match event {
                ReuseEvent::Exec { .. } => executed += 1,
                ReuseEvent::Hit { len, .. } => {
                    skipped += u64::from(*len);
                    reuse_ops += 1;
                }
            }
        }
        let checks = [
            ("executed", self.executed, executed),
            ("skipped", self.skipped, skipped),
            ("reuse ops", self.reuse_ops, reuse_ops),
            ("dropped", self.dropped, log.dropped),
            (
                "class-attributed executed",
                self.exec_by_class.iter().sum::<u64>(),
                executed,
            ),
            (
                "class-attributed skipped",
                self.skip_by_class.iter().sum::<u64>() + self.unattributed,
                skipped,
            ),
            (
                "shape-attributed executed",
                self.shapes.iter().map(|s| s.executed).sum::<u64>(),
                executed,
            ),
            (
                "shape-attributed skipped",
                self.shapes.iter().map(|s| s.skipped).sum::<u64>(),
                skipped,
            ),
            (
                "shape-attributed reuse ops",
                self.shapes.iter().map(|s| s.reuse_ops).sum::<u64>(),
                reuse_ops,
            ),
            ("depth-recorded hits", self.hit_depth.count(), reuse_ops),
        ];
        for (what, got, want) in checks {
            if got != want {
                return Err(format!("{what}: attributed {got}, log totals {want}"));
            }
        }
        Ok(())
    }

    /// Bucket totals for one shape.
    pub fn shape(&self, shape: LoopShape) -> ShapeBucket {
        self.shapes[shape.index()]
    }

    /// Measured per-class replacement weights: each observed class is
    /// priced at its average saved cycles per skipped instruction
    /// (clamped to `1..=u16::MAX`); classes never seen in a reuse hit —
    /// and the unattributed tail — keep weight 1, so missing data never
    /// changes a trace's rank. Feed the result to
    /// [`tlr_core::ReplacementPolicy::CostBenefitMeasured`].
    pub fn class_weights(&self, model: &dyn LatencyModel) -> ClassWeights {
        let mut table = [1u16; OpClass::COUNT];
        for &class in &OpClass::ALL {
            let skipped = self.skip_by_class[class.index()];
            if skipped > 0 {
                let saved = skipped.saturating_mul(model.latency(class));
                let per_instr = saved / skipped;
                table[class.index()] = per_instr.clamp(1, u64::from(u16::MAX)) as u16;
            }
        }
        ClassWeights::from_table(table)
    }

    /// Per-opcode-class attribution table, priced under `model`. The
    /// trailing rows keep the conservation visible: `unattributed` +
    /// the class rows sum exactly to `total`.
    pub fn class_table(&self, model: &dyn LatencyModel) -> Table {
        let mut table = Table::new(vec![
            "class",
            "executed",
            "skipped",
            "reuse %",
            "saved cycles",
        ]);
        for &class in &OpClass::ALL {
            let executed = self.exec_by_class[class.index()];
            let skipped = self.skip_by_class[class.index()];
            if executed == 0 && skipped == 0 {
                continue;
            }
            let total = executed + skipped;
            table.row(vec![
                class.label().to_string(),
                executed.to_string(),
                skipped.to_string(),
                fnum(skipped as f64 / total as f64 * 100.0, 1),
                skipped.saturating_mul(model.latency(class)).to_string(),
            ]);
        }
        if self.unattributed > 0 {
            table.row(vec![
                "(unattributed)".to_string(),
                "0".to_string(),
                self.unattributed.to_string(),
                String::new(),
                String::new(),
            ]);
        }
        table.row(vec![
            "total".to_string(),
            self.executed.to_string(),
            self.skipped.to_string(),
            fnum(self.pct_reused(), 1),
            self.saved_cycles(model).to_string(),
        ]);
        table
    }

    /// Per-loop-structure attribution table, with the hit-depth profile.
    pub fn loop_table(&self) -> Table {
        let mut table = Table::new(vec![
            "context",
            "executed",
            "skipped",
            "reuse ops",
            "reuse %",
        ]);
        for shape in LoopShape::ALL {
            let b = self.shape(shape);
            table.row(vec![
                shape.label().to_string(),
                b.executed.to_string(),
                b.skipped.to_string(),
                b.reuse_ops.to_string(),
                fnum(b.pct_reused(), 1),
            ]);
        }
        table.row(vec![
            "total".to_string(),
            self.executed.to_string(),
            self.skipped.to_string(),
            self.reuse_ops.to_string(),
            fnum(self.pct_reused(), 1),
        ]);
        table.row(vec![
            "hit depth".to_string(),
            format!("mean {}", fnum(self.hit_depth.mean().unwrap_or(0.0), 2)),
            format!("max {}", self.hit_depth.max()),
            String::new(),
            String::new(),
        ]);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::{Alpha21164, ClassMix, UnitLatency};

    fn exec(pc: u32, class: OpClass) -> ReuseEvent {
        ReuseEvent::Exec { pc, class }
    }

    fn hit(pc: u32, len: u32, next_pc: u32, mix: ClassMix) -> ReuseEvent {
        ReuseEvent::Hit {
            pc,
            len,
            next_pc,
            mix,
        }
    }

    fn mix_of(pairs: &[(OpClass, u32)]) -> ClassMix {
        let mut counts = [0u32; OpClass::COUNT];
        for &(class, n) in pairs {
            counts[class.index()] = n;
        }
        ClassMix::from_counts(counts)
    }

    fn log_of(events: Vec<ReuseEvent>) -> DecisionLog {
        let mut log = DecisionLog::new();
        for e in events {
            log.push(e);
        }
        log
    }

    #[test]
    fn attributes_classes_and_conserves_totals() {
        let log = log_of(vec![
            exec(0, OpClass::IntAlu),
            exec(1, OpClass::Load),
            hit(
                2,
                3,
                5,
                mix_of(&[(OpClass::IntAlu, 2), (OpClass::FpMul, 1)]),
            ),
            exec(5, OpClass::Store),
        ]);
        let a = decant(&log);
        a.verify(&log).unwrap();
        assert_eq!(a.executed, 3);
        assert_eq!(a.skipped, 3);
        assert_eq!(a.reuse_ops, 1);
        assert_eq!(a.exec_by_class[OpClass::Load.index()], 1);
        assert_eq!(a.skip_by_class[OpClass::IntAlu.index()], 2);
        assert_eq!(a.skip_by_class[OpClass::FpMul.index()], 1);
        assert_eq!(a.unattributed, 0);
        // Alpha: IntAlu=1, FpMul=4 → 2*1 + 1*4 = 6 cycles saved.
        assert_eq!(a.saved_cycles(&Alpha21164), 6);
        assert_eq!(a.saved_cycles(&UnitLatency), 3);
    }

    #[test]
    fn legacy_zero_mix_hits_land_in_unattributed() {
        let log = log_of(vec![
            hit(2, 4, 6, ClassMix::EMPTY),
            hit(6, 2, 8, mix_of(&[(OpClass::Load, 1)])), // half-attributed
        ]);
        let a = decant(&log);
        a.verify(&log).unwrap();
        assert_eq!(a.skipped, 6);
        assert_eq!(a.unattributed, 4 + 1);
        assert_eq!(a.skip_by_class[OpClass::Load.index()], 1);
        // Unattributed skips save no *attributed* cycles.
        assert_eq!(a.saved_cycles(&UnitLatency), 1);
    }

    #[test]
    fn loop_context_attributes_hits_to_the_iterating_loop() {
        // A loop at PC 10..=12 whose body reuse-hits each iteration
        // after the first back edge.
        let body_mix = mix_of(&[(OpClass::IntAlu, 2)]);
        let log = log_of(vec![
            exec(10, OpClass::IntAlu),
            exec(11, OpClass::IntAlu),
            exec(12, OpClass::Branch),
            exec(10, OpClass::IntAlu), // back edge: loop established
            hit(11, 2, 10, body_mix),  // body hit, wraps to the header
            exec(10, OpClass::IntAlu),
            hit(11, 2, 10, body_mix),
            exec(10, OpClass::IntAlu),
            hit(11, 2, 13, body_mix), // last iteration falls through
            exec(13, OpClass::IntAlu),
        ]);
        let a = decant(&log);
        a.verify(&log).unwrap();
        let body = a.shape(LoopShape::LoopBody);
        assert_eq!(body.reuse_ops, 3, "all three hits are loop-body");
        assert_eq!(body.skipped, 6);
        assert_eq!(a.shape(LoopShape::LoopHeader).executed, 3);
        assert_eq!(a.shape(LoopShape::StraightLine).executed, 4);
        assert_eq!(a.hit_depth.max(), 1);
        assert_eq!(a.pct_reused(), 6.0 / 13.0 * 100.0);
    }

    #[test]
    fn dropped_decisions_are_reported_not_attributed() {
        let mut log = DecisionLog::with_cap(1);
        log.push(exec(0, OpClass::IntAlu));
        log.push(exec(1, OpClass::IntAlu)); // dropped
        let a = decant(&log);
        a.verify(&log).unwrap();
        assert_eq!(a.executed, 1);
        assert_eq!(a.dropped, 1);
    }

    #[test]
    fn class_weights_price_observed_classes_by_latency() {
        let log = log_of(vec![hit(
            0,
            3,
            3,
            mix_of(&[(OpClass::IntAlu, 2), (OpClass::FpDiv, 1)]),
        )]);
        let a = decant(&log);
        let w = a.class_weights(&Alpha21164);
        assert_eq!(w.get(OpClass::IntAlu), 1);
        assert_eq!(
            u64::from(w.get(OpClass::FpDiv)),
            Alpha21164.latency(OpClass::FpDiv)
        );
        assert_eq!(w.get(OpClass::Load), 1, "unobserved class stays neutral");
        // Under the unit model every observed class is worth 1 → UNIT.
        assert_eq!(a.class_weights(&UnitLatency), ClassWeights::UNIT);
    }

    #[test]
    fn tables_render_with_conserving_totals() {
        let log = log_of(vec![
            exec(0, OpClass::Load),
            hit(1, 2, 3, mix_of(&[(OpClass::IntAlu, 2)])),
        ]);
        let a = decant(&log);
        let class = a.class_table(&Alpha21164);
        let totals = class.rows().last().unwrap();
        assert_eq!(totals[1], "1");
        assert_eq!(totals[2], "2");
        let loops = a.loop_table();
        assert_eq!(loops.len(), LoopShape::ALL.len() + 2);
    }
}
