#![warn(missing_docs)]
//! # trace-reuse
//!
//! A from-scratch Rust reproduction of **"Trace-Level Reuse"**
//! (A. González, J. Tubella and C. Molina, *Proc. International
//! Conference on Parallel Processing*, 1999), including every substrate
//! the paper's evaluation depends on.
//!
//! Trace-level reuse buffers the live-in and live-out value sets of
//! dynamic instruction sequences in a *Reuse Trace Memory* (RTM). When
//! the program reaches the same starting PC with the same live-in values,
//! the processor skips fetching and executing the whole trace and applies
//! the recorded outputs instead — collapsing long dependence chains into
//! a single reuse operation, saving fetch bandwidth, and freeing
//! instruction-window entries.
//!
//! ## Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | Alpha-flavoured ISA, dynamic-instruction records, 21164 latency model |
//! | [`asm`] | two-pass assembler + programmatic builder |
//! | [`vm`] | functional simulator (the ATOM-instrumentation substitute) |
//! | [`workloads`] | 14 SPEC95-named kernels with dialled-in reuse profiles |
//! | [`timing`] | Austin–Sohi dependence analysis; infinite & finite windows |
//! | [`core`] | **the paper's contribution**: reusability tables, trace partitioning, the RTM, collection heuristics, the execution-driven engine, limit studies, theorems |
//! | [`decant`] | reuse attribution: decants the engine's decision tap by opcode class and loop structure, feeding measured policy weights |
//! | [`persist`] | durable trace state: record/replay streams, RTM snapshots, warm starts |
//! | [`serve`] | sharded registry of warm RTMs keyed by program fingerprint, with snapshot merging |
//! | [`pipeline`] | cycle-level superscalar with the RTM at fetch (§3) |
//! | [`stats`] | means, tables, histograms, charts |
//! | [`util`] | inline vectors, fx hashing, deterministic RNGs |
//!
//! ## Quick start
//!
//! ```
//! use trace_reuse::prelude::*;
//!
//! // 1. Get a workload (or assemble your own program).
//! let program = tlr_workloads::by_name("compress").unwrap().program_with(42, 10);
//!
//! // 2. Run the execution-driven reuse engine with a 4K-entry RTM.
//! let mut engine = TraceReuseEngine::new(
//!     &program,
//!     EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
//! );
//! let stats = engine.run(50_000).unwrap();
//! println!("{:.1}% of instructions skipped via trace reuse", stats.pct_reused());
//! ```
//!
//! The `reproduce` binary (in `tlr-bench`) regenerates every table and
//! figure of the paper's evaluation: `cargo run --release -p tlr-bench
//! --bin reproduce`.

pub use tlr_asm as asm;
pub use tlr_core as core;
pub use tlr_decant as decant;
pub use tlr_isa as isa;
pub use tlr_persist as persist;
pub use tlr_pipeline as pipeline;
pub use tlr_serve as serve;
pub use tlr_stats as stats;
pub use tlr_timing as timing;
pub use tlr_util as util;
pub use tlr_vm as vm;
pub use tlr_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use tlr_asm::{assemble, Program, ProgramBuilder};
    pub use tlr_core::RtmSnapshot;
    pub use tlr_core::{
        ClassWeights, DecisionLog, EngineConfig, EngineStats, Heuristic, InstrReuseTable, IoCaps,
        LimitConfig, LimitStudySink, ReplacementPolicy, ReuseTraceMemory, RtmConfig,
        ThroughputEngine, TraceKey, TraceMeta, TraceReuseEngine, LFU_HALF_LIFE,
    };
    pub use tlr_decant::{decant, Attribution, LoopDetector, LoopShape};
    pub use tlr_isa::{Alpha21164, ClassMix, CollectSink, DynInstr, Loc, NullSink, StreamSink};
    pub use tlr_persist::{PersistError, TraceReader, TraceWriter};
    pub use tlr_pipeline::{PipeConfig, Pipeline, ReuseConfig};
    pub use tlr_serve::{
        Daemon, DaemonHandle, RefreshTicker, RegistryConfig, RemoteRegistry, SnapshotRegistry,
    };
    pub use tlr_timing::{analyze_base, TimingSim, Window};
    pub use tlr_vm::{ExecMode, RunOutcome, Vm};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let program = assemble("li r1, 7\nhalt\n").unwrap();
        let mut vm = Vm::new(&program);
        let outcome = vm.run(10, &mut NullSink).unwrap();
        assert!(matches!(outcome, RunOutcome::Halted { executed: 1 }));
    }
}
