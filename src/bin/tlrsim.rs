//! `tlrsim` — assemble, run and analyze trace-reuse programs from the
//! command line.
//!
//! ```text
//! tlrsim run FILE      [--budget N] [--reuse] [--rtm SIZE] [--heuristic H]
//! tlrsim disasm FILE
//! tlrsim analyze FILE  [--budget N] [--window W]
//!
//!   SIZE: 512 | 4k | 32k | 256k            (default 4k)
//!   H:    i1..i8 | ilr-ne | ilr-exp | bb   (default i4)
//! ```
//!
//! `run` executes a program (optionally under the reuse engine), `disasm`
//! prints the assembled listing, and `analyze` runs the paper's full
//! limit study on it.

use trace_reuse::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  tlrsim run FILE     [--budget N] [--reuse] [--rtm 512|4k|32k|256k] \
         [--heuristic i1..i8|ilr-ne|ilr-exp|bb]\n  tlrsim disasm FILE\n  tlrsim analyze FILE \
         [--budget N] [--window W]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Program {
    let source = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    match assemble(&source) {
        Ok(p) => p,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn parse_rtm(s: &str) -> RtmConfig {
    match s.to_ascii_lowercase().as_str() {
        "512" => RtmConfig::RTM_512,
        "4k" => RtmConfig::RTM_4K,
        "32k" => RtmConfig::RTM_32K,
        "256k" => RtmConfig::RTM_256K,
        other => fail(&format!("unknown RTM size '{other}' (512|4k|32k|256k)")),
    }
}

fn parse_heuristic(s: &str) -> Heuristic {
    match s.to_ascii_lowercase().as_str() {
        "ilr-ne" => Heuristic::IlrNe,
        "ilr-exp" => Heuristic::IlrExp,
        "bb" => Heuristic::BasicBlock,
        other => match other.strip_prefix('i').and_then(|n| n.parse::<u32>().ok()) {
            Some(n) if (1..=64).contains(&n) => Heuristic::FixedExp(n),
            _ => fail(&format!(
                "unknown heuristic '{other}' (i1..i8, ilr-ne, ilr-exp, bb)"
            )),
        },
    }
}

struct Flags {
    budget: u64,
    window: usize,
    reuse: bool,
    rtm: RtmConfig,
    heuristic: Heuristic,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags {
        budget: 1_000_000,
        window: 256,
        reuse: false,
        rtm: RtmConfig::RTM_4K,
        heuristic: Heuristic::FixedExp(4),
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, name: &str| -> String {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| fail(&format!("missing value for {name}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                flags.budget = value(args, i, "--budget")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--budget: {e}")));
                i += 2;
            }
            "--window" => {
                flags.window = value(args, i, "--window")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--window: {e}")));
                i += 2;
            }
            "--reuse" => {
                flags.reuse = true;
                i += 1;
            }
            "--rtm" => {
                flags.rtm = parse_rtm(&value(args, i, "--rtm"));
                i += 2;
            }
            "--heuristic" => {
                flags.heuristic = parse_heuristic(&value(args, i, "--heuristic"));
                i += 2;
            }
            other => fail(&format!("unknown option '{other}'")),
        }
    }
    flags
}

fn cmd_run(path: &str, flags: &Flags) {
    let program = load(path);
    if !flags.reuse {
        let mut vm = Vm::new(&program);
        let started = std::time::Instant::now();
        let outcome = vm
            .run(flags.budget, &mut NullSink)
            .unwrap_or_else(|e| fail(&format!("runtime error: {e}")));
        let dt = started.elapsed();
        println!(
            "{}: {} instructions in {:.1} ms ({:.1} M instr/s)",
            match outcome {
                RunOutcome::Halted { .. } => "halted",
                RunOutcome::BudgetExhausted { .. } => "budget exhausted",
            },
            outcome.executed(),
            dt.as_secs_f64() * 1e3,
            outcome.executed() as f64 / dt.as_secs_f64() / 1e6
        );
        return;
    }
    let mut engine = TraceReuseEngine::new(
        &program,
        EngineConfig::paper(flags.rtm, flags.heuristic),
    );
    let stats = engine
        .run(flags.budget)
        .unwrap_or_else(|e| fail(&format!("engine error: {e}")));
    println!(
        "{}: {} total instructions ({} executed, {} skipped)",
        if stats.halted { "halted" } else { "budget exhausted" },
        stats.total(),
        stats.executed,
        stats.skipped
    );
    println!(
        "reuse: {:.1}% of instructions via {} reuse ops (avg trace {:.1})",
        stats.pct_reused(),
        stats.reuse_ops,
        stats.avg_reused_trace_size()
    );
    println!(
        "RTM [{} {}]: {} lookups, {} hits, {} stores, {} evictions",
        flags.rtm.label(),
        flags.heuristic.label(),
        stats.rtm.lookups,
        stats.rtm.hits,
        stats.rtm.stores,
        stats.rtm.evictions
    );
}

fn cmd_disasm(path: &str) {
    let program = load(path);
    print!("{}", program.disassemble());
    if !program.data.is_empty() {
        println!("; data image: {} initialized words", program.data.len());
    }
}

fn cmd_analyze(path: &str, flags: &Flags) {
    let program = load(path);
    let mut vm = Vm::new(&program);
    let mut sink = LimitStudySink::new(
        tlr_core::LimitConfig {
            window: flags.window,
            ..Default::default()
        },
        &Alpha21164,
    );
    vm.run(flags.budget, &mut sink)
        .unwrap_or_else(|e| fail(&format!("runtime error: {e}")));
    let res = sink.result();
    println!("analyzed {} dynamic instructions", res.total_instrs);
    println!(
        "instruction-level reusability: {:.1}%",
        res.reusability_pct
    );
    println!(
        "base IPC: {:.2} (infinite window) / {:.2} (W={})",
        res.base_inf.ipc, res.base_win.ipc, flags.window
    );
    println!(
        "speed-up @1-cycle reuse: ILR {:.2}/{:.2}, TLR {:.2}/{:.2} (infinite / W={})",
        res.ilr_speedup_inf(1),
        res.ilr_speedup_win(1),
        res.tlr_speedup_inf(1),
        res.tlr_speedup_win(1),
        flags.window
    );
    let ts = &res.trace_stats;
    println!(
        "maximal reusable traces: {} (avg {:.1} instrs, {:.1} in / {:.1} out values)",
        ts.traces,
        ts.avg_size(),
        ts.avg_inputs(),
        ts.avg_outputs()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file, rest) = match args.split_first() {
        Some((cmd, rest)) => match rest.split_first() {
            Some((file, rest)) if !file.starts_with('-') => (cmd.as_str(), file.clone(), rest),
            _ => usage(),
        },
        None => usage(),
    };
    let flags = parse_flags(rest);
    match cmd {
        "run" => cmd_run(&file, &flags),
        "disasm" => cmd_disasm(&file),
        "analyze" => cmd_analyze(&file, &flags),
        _ => usage(),
    }
}
