//! `tlrsim` — assemble, run and analyze trace-reuse programs from the
//! command line.
//!
//! ```text
//! tlrsim run FILE      [--budget N] [--fast] [--mode fast|observed] [--reuse]
//!                      [--rtm SIZE] [--heuristic H] [--policy P]
//!                      [--warm-rtm SNAP]
//! tlrsim disasm FILE
//! tlrsim analyze FILE  [--budget N] [--window W]
//! tlrsim decant FILE   [--budget N] [--rtm SIZE] [--heuristic H] [--policy P]
//!                      [--out JSON]
//! tlrsim record FILE   --out TRACE [--budget N]
//! tlrsim replay FILE   --trace TRACE
//! tlrsim snapshot FILE --out SNAP  [--budget N] [--rtm SIZE] [--heuristic H]
//!                      [--policy P]
//! tlrsim merge SNAP SNAP [SNAP...] --out SNAP [--policy P]
//! tlrsim compact DIR   [--policy P] [--keep-deltas]
//! tlrsim golden        [--regen] [--out DIR]
//! tlrsim serve --snapshots DIR [--budget N] [--rtm SIZE] [--heuristic H]
//!                              [--policy P] [--threads N] [--seed N] [--save]
//!                              [--listen SOCK] [--refresh-secs N]
//!
//!   SIZE:  512 | 4k | 32k | 256k            (default 4k)
//!   H:     i1..i8 | ilr-ne | ilr-exp | bb   (default i4)
//!   P:     lru | lfu | cost-benefit         (default lru)
//!          (--lfu-half-life N tunes the LFU/cost-benefit decay window)
//!   TRACE: *.tlrtrace (binary) or *.json (debug format)
//!   SNAP:  *.tlrsnap  (binary) or *.json (debug format)
//!   FILE:  an assembly file, or workload:NAME for a built-in workload
//!          (seeded with --seed)
//! ```
//!
//! `run` also takes `--remote SOCK` (warm-start from a `tlrd` daemon and
//! publish the run's RTM back — implies the reuse engine) and `--digest`
//! (print the final architectural-state digest, the equality token the
//! daemon/fleet gates compare).
//!
//! `run` executes a program (optionally under the reuse engine; with
//! `--warm-rtm` the engine starts from a saved RTM snapshot). `--fast`
//! (equivalently `--mode fast`; `--mode observed` is the default) runs
//! on the predecoded fast path — plain execution uses the flat-dispatch
//! interpreter, reuse runs use the throughput engine with straight-line
//! trace blocks — and every run prints its instructions/sec. `disasm`
//! prints the assembled listing, `analyze` runs the paper's full limit
//! study, `decant` runs the reuse engine with its decision tap enabled
//! and attributes every reuse decision by opcode class and loop
//! structure (`tlr-decant`; `--out FILE.json` also writes the
//! attribution as JSON), `record` writes every executed instruction to a trace file,
//! `replay` re-executes against a recording and fails on the first
//! divergence, `snapshot` runs the reuse engine and saves its RTM for
//! later warm starts, `merge` pools several runs' snapshots of one
//! program into a single snapshot (MRU-priority union; list the
//! freshest run last), `compact` folds each program's base + delta
//! segments in a snapshot directory into one fresh base file
//! (`--keep-deltas` renames the originals to `*.bak` instead of
//! deleting them), `golden` maintains the golden-trace regression
//! corpus in `tests/golden/` — with `--regen` it re-records every
//! built-in workload (trace file + expected digests in a manifest,
//! under pinned budget/seed/engine parameters so the corpus is
//! canonical); without it, it regenerates into a scratch directory and
//! byte-compares against the checked-in corpus, exiting nonzero and
//! naming each drifted file (the CI staleness gate) — and `serve`
//! hosts a sharded snapshot registry
//! over a directory — without `--listen`, driving every built-in
//! workload through it in parallel (warm where the directory has
//! state, cold otherwise, publishing each run's RTM back); with
//! `--listen SOCK`, as the `tlrd` daemon serving the registry to other
//! processes over a Unix-domain socket (see `docs/PROTOCOL.md`). Both
//! serve modes background-rescan the directory every `--refresh-secs`
//! seconds so snapshots dropped in by other processes reach resident
//! entries without a restart. With `--save`, serve spills each
//! published entry back to the directory incrementally: an append-only
//! delta segment holding only the PC groups that changed, next to the
//! base file, compacted automatically once enough deltas accumulate.

use std::path::Path;
use trace_reuse::persist::{
    load_snapshot, load_trace, peek_snapshot_fingerprint, program_fingerprint,
    program_shape_fingerprint, replay, save_snapshot, save_trace, FileFormat, MemorySource,
    TraceReader, TraceWriter,
};
use trace_reuse::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  tlrsim run FILE     [--budget N] [--fast] [--mode fast|observed] [--reuse] \
         [--rtm 512|4k|32k|256k] \
         [--heuristic i1..i8|ilr-ne|ilr-exp|bb] [--policy lru|lfu|cost-benefit] \
         [--warm-rtm SNAP]\n  tlrsim disasm FILE\n  \
         tlrsim analyze FILE [--budget N] [--window W]\n  \
         tlrsim decant FILE  [--budget N] [--rtm ...] [--heuristic ...] [--policy ...] \
         [--out JSON]\n  \
         tlrsim record FILE   --out TRACE [--budget N]\n  \
         tlrsim replay FILE   --trace TRACE\n  \
         tlrsim snapshot FILE --out SNAP [--budget N] [--rtm ...] [--heuristic ...] \
         [--policy ...]\n  \
         tlrsim merge SNAP SNAP [SNAP...] --out SNAP [--policy ...]\n  \
         tlrsim compact DIR  [--policy ...] [--keep-deltas]\n  \
         tlrsim golden       [--regen] [--out DIR]\n  \
         tlrsim serve --snapshots DIR [--budget N] [--rtm ...] [--heuristic ...] \
         [--policy ...] [--threads N] [--seed N] [--save] [--listen SOCK] \
         [--refresh-secs N]\n\
         FILE may be an assembly file or workload:NAME (built-in workload); \
         run also takes --remote SOCK (tlrd warm start) and --digest; \
         --lfu-half-life N tunes the lfu/cost-benefit decay window everywhere"
    );
    std::process::exit(2);
}

/// A named command-line error followed by the usage text: every bad
/// invocation exits 2 with a message saying *what* was wrong, never a
/// panic or a bare usage dump.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Load a program: `workload:NAME` picks a built-in workload (seeded
/// with `--seed`, so daemon clients and the daemon's producers agree on
/// the program fingerprint); anything else is an assembly file.
fn load(path: &str, seed: u64) -> Program {
    if let Some(name) = path.strip_prefix("workload:") {
        let Some(workload) = tlr_workloads::by_name(name) else {
            let names: Vec<&str> = tlr_workloads::all().iter().map(|w| w.name).collect();
            fail(&format!(
                "unknown workload '{name}' (built-ins: {})",
                names.join(", ")
            ));
        };
        return workload.program(seed);
    }
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    match assemble(&source) {
        Ok(p) => p,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn parse_rtm(s: &str) -> RtmConfig {
    match s.to_ascii_lowercase().as_str() {
        "512" => RtmConfig::RTM_512,
        "4k" => RtmConfig::RTM_4K,
        "32k" => RtmConfig::RTM_32K,
        "256k" => RtmConfig::RTM_256K,
        other => usage_error(&format!("unknown RTM size '{other}' (512|4k|32k|256k)")),
    }
}

fn parse_heuristic(s: &str) -> Heuristic {
    match s.to_ascii_lowercase().as_str() {
        "ilr-ne" => Heuristic::IlrNe,
        "ilr-exp" => Heuristic::IlrExp,
        "bb" => Heuristic::BasicBlock,
        other => match other.strip_prefix('i').and_then(|n| n.parse::<u32>().ok()) {
            Some(n) if (1..=64).contains(&n) => Heuristic::FixedExp(n),
            _ => usage_error(&format!(
                "unknown heuristic '{other}' (i1..i8, ilr-ne, ilr-exp, bb)"
            )),
        },
    }
}

fn parse_policy(s: &str) -> ReplacementPolicy {
    ReplacementPolicy::parse(s)
        .unwrap_or_else(|| usage_error(&format!("unknown policy '{s}' (lru, lfu, cost-benefit)")))
}

struct Flags {
    budget: u64,
    window: usize,
    fast: bool,
    reuse: bool,
    rtm: RtmConfig,
    heuristic: Heuristic,
    policy: ReplacementPolicy,
    lfu_half_life: u64,
    out: Option<String>,
    trace: Option<String>,
    warm_rtm: Option<String>,
    snapshots: Option<String>,
    threads: usize,
    seed: u64,
    save: bool,
    keep_deltas: bool,
    regen: bool,
    listen: Option<String>,
    remote: Option<String>,
    digest: bool,
    refresh_secs: u64,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags {
        budget: 1_000_000,
        window: 256,
        fast: false,
        reuse: false,
        rtm: RtmConfig::RTM_4K,
        heuristic: Heuristic::FixedExp(4),
        policy: ReplacementPolicy::Lru,
        lfu_half_life: LFU_HALF_LIFE,
        out: None,
        trace: None,
        warm_rtm: None,
        snapshots: None,
        threads: 0,
        seed: 20260611,
        save: false,
        keep_deltas: false,
        regen: false,
        listen: None,
        remote: None,
        digest: false,
        refresh_secs: 1,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, name: &str| -> String {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                flags.budget = value(args, i, "--budget")
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("--budget: {e}")));
                i += 2;
            }
            "--window" => {
                flags.window = value(args, i, "--window")
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("--window: {e}")));
                i += 2;
            }
            "--fast" => {
                flags.fast = true;
                i += 1;
            }
            "--mode" => {
                flags.fast = match value(args, i, "--mode").to_ascii_lowercase().as_str() {
                    "fast" => true,
                    "observed" => false,
                    other => usage_error(&format!(
                        "unknown execution mode '{other}' (fast, observed)"
                    )),
                };
                i += 2;
            }
            "--reuse" => {
                flags.reuse = true;
                i += 1;
            }
            "--rtm" => {
                flags.rtm = parse_rtm(&value(args, i, "--rtm"));
                i += 2;
            }
            "--heuristic" => {
                flags.heuristic = parse_heuristic(&value(args, i, "--heuristic"));
                i += 2;
            }
            "--policy" => {
                flags.policy = parse_policy(&value(args, i, "--policy"));
                i += 2;
            }
            "--lfu-half-life" => {
                flags.lfu_half_life = value(args, i, "--lfu-half-life")
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("--lfu-half-life: {e}")));
                if flags.lfu_half_life == 0 {
                    usage_error("--lfu-half-life must be at least 1 lookup");
                }
                i += 2;
            }
            "--out" => {
                flags.out = Some(value(args, i, "--out"));
                i += 2;
            }
            "--trace" => {
                flags.trace = Some(value(args, i, "--trace"));
                i += 2;
            }
            "--warm-rtm" => {
                flags.warm_rtm = Some(value(args, i, "--warm-rtm"));
                i += 2;
            }
            "--snapshots" => {
                flags.snapshots = Some(value(args, i, "--snapshots"));
                i += 2;
            }
            "--threads" => {
                flags.threads = value(args, i, "--threads")
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("--threads: {e}")));
                i += 2;
            }
            "--seed" => {
                flags.seed = value(args, i, "--seed")
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("--seed: {e}")));
                i += 2;
            }
            "--save" => {
                flags.save = true;
                i += 1;
            }
            "--keep-deltas" => {
                flags.keep_deltas = true;
                i += 1;
            }
            "--regen" => {
                flags.regen = true;
                i += 1;
            }
            "--listen" => {
                flags.listen = Some(value(args, i, "--listen"));
                i += 2;
            }
            "--remote" => {
                flags.remote = Some(value(args, i, "--remote"));
                i += 2;
            }
            "--digest" => {
                flags.digest = true;
                i += 1;
            }
            "--refresh-secs" => {
                flags.refresh_secs = value(args, i, "--refresh-secs")
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("--refresh-secs: {e}")));
                i += 2;
            }
            other => usage_error(&format!("unknown option '{other}'")),
        }
    }
    flags
}

/// A reuse engine on either substrate: the reference engine or the
/// predecoded throughput engine (`--fast`). Both make identical reuse
/// decisions; only the machinery underneath differs.
enum AnyEngine {
    Reference(Box<TraceReuseEngine>),
    Fast(Box<ThroughputEngine>),
}

impl AnyEngine {
    fn build(
        program: &Program,
        config: EngineConfig,
        warm: Option<&RtmSnapshot>,
        fast: bool,
    ) -> Self {
        match (fast, warm) {
            (true, Some(s)) => {
                AnyEngine::Fast(Box::new(ThroughputEngine::new_warm(program, config, s)))
            }
            (true, None) => AnyEngine::Fast(Box::new(ThroughputEngine::new(program, config))),
            (false, Some(s)) => {
                AnyEngine::Reference(Box::new(TraceReuseEngine::new_warm(program, config, s)))
            }
            (false, None) => AnyEngine::Reference(Box::new(TraceReuseEngine::new(program, config))),
        }
    }

    fn set_source_run(&mut self, run: u64) {
        match self {
            AnyEngine::Reference(e) => e.set_source_run(run),
            AnyEngine::Fast(e) => e.set_source_run(run),
        }
    }

    fn run(&mut self, budget: u64) -> Result<EngineStats, trace_reuse::vm::VmError> {
        match self {
            AnyEngine::Reference(e) => e.run(budget),
            AnyEngine::Fast(e) => e.run(budget),
        }
    }

    fn export_rtm(&self) -> Option<RtmSnapshot> {
        match self {
            AnyEngine::Reference(e) => e.export_rtm(),
            AnyEngine::Fast(e) => Some(e.export_rtm()),
        }
    }

    fn state_digest(&self) -> u64 {
        match self {
            AnyEngine::Reference(e) => e.vm().state_digest(),
            AnyEngine::Fast(e) => e.vm().state_digest(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            AnyEngine::Reference(_) => "reference",
            AnyEngine::Fast(_) => "fast",
        }
    }
}

fn cmd_run(path: &str, flags: &Flags) {
    let program = load(path, flags.seed);
    if !flags.reuse && flags.warm_rtm.is_none() && flags.remote.is_none() {
        let mut vm = Vm::new(&program);
        let started = std::time::Instant::now();
        let outcome = if flags.fast {
            vm.run_fast(flags.budget)
        } else {
            vm.run(flags.budget, &mut NullSink)
        }
        .unwrap_or_else(|e| fail(&format!("runtime error: {e}")));
        let dt = started.elapsed();
        println!(
            "{}: {} instructions in {:.1} ms ({:.1} M instr/s, {} interpreter)",
            match outcome {
                RunOutcome::Halted { .. } => "halted",
                RunOutcome::BudgetExhausted { .. } => "budget exhausted",
            },
            outcome.executed(),
            dt.as_secs_f64() * 1e3,
            outcome.executed() as f64 / dt.as_secs_f64() / 1e6,
            if flags.fast {
                "predecoded"
            } else {
                "observing"
            }
        );
        if flags.digest {
            println!("state digest: {:016x}", vm.state_digest());
        }
        return;
    }
    if flags.warm_rtm.is_some() && flags.remote.is_some() {
        usage_error("--warm-rtm and --remote are mutually exclusive warm-start sources");
    }
    let config = EngineConfig::paper(flags.rtm, flags.heuristic)
        .with_policy(flags.policy)
        .with_lfu_half_life(flags.lfu_half_life);
    let fingerprint = program_fingerprint(&program);
    let shape = program_shape_fingerprint(&program);
    // --remote warm-starts from (and publishes back to) a tlrd daemon.
    // The fetch goes by shape, so a daemon that has never seen this
    // exact program still warm-starts it from another data seed's
    // published state when the code matches.
    let remote = flags.remote.as_deref().map(|sock| {
        RemoteRegistry::connect(Path::new(sock)).unwrap_or_else(|e| fail(&format!("{sock}: {e}")))
    });
    let mut engine = if let Some(remote) = &remote {
        let sock = flags.remote.as_deref().unwrap_or_default();
        match remote
            .get_by_shape(fingerprint, shape)
            .unwrap_or_else(|e| fail(&format!("{sock}: {e}")))
        {
            Some(snapshot) => {
                println!(
                    "warm start: {} traces from daemon at {sock}",
                    snapshot.len()
                );
                AnyEngine::build(&program, config, Some(&snapshot), flags.fast)
            }
            None => {
                println!("cold start: daemon at {sock} has no state for this program");
                AnyEngine::build(&program, config, None, flags.fast)
            }
        }
    } else if let Some(snap_path) = &flags.warm_rtm {
        let (_, snapshot) = load_snapshot(Path::new(snap_path), Some(fingerprint))
            .unwrap_or_else(|e| fail(&format!("{snap_path}: {e}")));
        println!(
            "warm start: {} traces imported from {snap_path}",
            snapshot.len()
        );
        AnyEngine::build(&program, config, Some(&snapshot), flags.fast)
    } else {
        AnyEngine::build(&program, config, None, flags.fast)
    };
    engine.set_source_run(flags.seed);
    let started = std::time::Instant::now();
    let stats = engine
        .run(flags.budget)
        .unwrap_or_else(|e| fail(&format!("engine error: {e}")));
    let dt = started.elapsed();
    if let Some(remote) = &remote {
        if let Some(mut snapshot) = engine.export_rtm() {
            snapshot.shape = shape;
            remote
                .publish(fingerprint, &snapshot)
                .unwrap_or_else(|e| fail(&format!("publish: {e}")));
            println!("published {} traces back to the daemon", snapshot.len());
        }
    }
    println!(
        "{}: {} total instructions ({} executed, {} skipped)",
        if stats.halted {
            "halted"
        } else {
            "budget exhausted"
        },
        stats.total(),
        stats.executed,
        stats.skipped
    );
    println!(
        "reuse: {:.1}% of instructions via {} reuse ops (avg trace {:.1})",
        stats.pct_reused(),
        stats.reuse_ops,
        stats.avg_reused_trace_size()
    );
    println!(
        "throughput: {:.1} M instr/s ({} engine)",
        stats.total() as f64 / dt.as_secs_f64().max(1e-9) / 1e6,
        engine.label()
    );
    println!(
        "RTM [{} {} {}]: {} lookups, {} hits, {} stores, {} evictions",
        flags.rtm.label(),
        flags.heuristic.label(),
        flags.policy.label(),
        stats.rtm.lookups,
        stats.rtm.hits,
        stats.rtm.stores,
        stats.rtm.evictions
    );
    if flags.digest {
        println!("state digest: {:016x}", engine.state_digest());
    }
}

fn cmd_record(path: &str, flags: &Flags) {
    let out = flags
        .out
        .as_deref()
        .unwrap_or_else(|| fail("record needs --out TRACE"));
    let program = load(path, flags.seed);
    let fingerprint = program_fingerprint(&program);
    let mut vm = Vm::new(&program);
    let (outcome, count) = if FileFormat::detect(Path::new(out)) == FileFormat::Json {
        // The JSON debug format is one-shot, not streaming: collect in
        // memory, then write the whole document.
        let mut sink = CollectSink::default();
        let outcome = vm
            .run(flags.budget, &mut sink)
            .unwrap_or_else(|e| fail(&format!("runtime error: {e}")));
        let halted = matches!(outcome, RunOutcome::Halted { .. });
        save_trace(Path::new(out), fingerprint, &sink.records, halted)
            .unwrap_or_else(|e| fail(&format!("{out}: {e}")));
        (outcome, sink.records.len() as u64)
    } else {
        let mut sink = TraceWriter::create(Path::new(out), fingerprint)
            .unwrap_or_else(|e| fail(&format!("{out}: {e}")));
        let outcome = vm
            .run(flags.budget, &mut sink)
            .unwrap_or_else(|e| fail(&format!("runtime error: {e}")));
        sink.set_halted(matches!(outcome, RunOutcome::Halted { .. }));
        let count = sink
            .close()
            .unwrap_or_else(|e| fail(&format!("{out}: {e}")));
        (outcome, count)
    };
    println!(
        "{}: {count} instructions recorded to {out}",
        match outcome {
            RunOutcome::Halted { .. } => "halted",
            RunOutcome::BudgetExhausted { .. } => "budget exhausted",
        }
    );
}

fn cmd_replay(path: &str, flags: &Flags) {
    let trace = flags
        .trace
        .as_deref()
        .unwrap_or_else(|| fail("replay needs --trace TRACE"));
    let program = load(path, flags.seed);
    let fingerprint = program_fingerprint(&program);
    let stats = if FileFormat::detect(Path::new(trace)) == FileFormat::Json {
        let file = load_trace(Path::new(trace), Some(fingerprint))
            .unwrap_or_else(|e| fail(&format!("{trace}: {e}")));
        let mut source = MemorySource::from(file);
        replay(&program, &mut source)
            .unwrap_or_else(|e| fail(&format!("{trace}: {e}")))
            .0
    } else {
        let mut reader = TraceReader::open(Path::new(trace), Some(fingerprint))
            .unwrap_or_else(|e| fail(&format!("{trace}: {e}")));
        replay(&program, &mut reader)
            .unwrap_or_else(|e| fail(&format!("{trace}: {e}")))
            .0
    };
    println!(
        "{}: {} instructions replayed, no divergence",
        if stats.halted {
            "halted"
        } else {
            "budget exhausted"
        },
        stats.replayed
    );
}

fn cmd_snapshot(path: &str, flags: &Flags) {
    let out = flags
        .out
        .as_deref()
        .unwrap_or_else(|| fail("snapshot needs --out SNAP"));
    let program = load(path, flags.seed);
    let mut engine = TraceReuseEngine::new(
        &program,
        EngineConfig::paper(flags.rtm, flags.heuristic)
            .with_policy(flags.policy)
            .with_lfu_half_life(flags.lfu_half_life),
    );
    engine.set_source_run(flags.seed);
    let stats = engine
        .run(flags.budget)
        .unwrap_or_else(|e| fail(&format!("engine error: {e}")));
    let mut snapshot = engine
        .export_rtm()
        .unwrap_or_else(|| fail("this engine backend does not snapshot"));
    // Stamp the value-independent identity so shape-resolved warm
    // starts (registry `get_by_shape`, daemon `GetShape`) can find
    // this file from a data-varied run of the same code.
    snapshot.shape = program_shape_fingerprint(&program);
    save_snapshot(Path::new(out), program_fingerprint(&program), &snapshot)
        .unwrap_or_else(|e| fail(&format!("{out}: {e}")));
    println!(
        "{}: {:.1}% reused while collecting; {} traces saved to {out}",
        if stats.halted {
            "halted"
        } else {
            "budget exhausted"
        },
        stats.pct_reused(),
        snapshot.len()
    );
}

fn cmd_merge(inputs: &[String], flags: &Flags) {
    let out = flags
        .out
        .as_deref()
        .unwrap_or_else(|| fail("merge needs --out SNAP"));
    if inputs.len() < 2 {
        fail("merge needs at least two input snapshots");
    }
    // The first file pins the program fingerprint; every later file
    // must agree — pooling reuse state across *different* programs is
    // never valid.
    let fingerprint = peek_snapshot_fingerprint(Path::new(&inputs[0]))
        .unwrap_or_else(|e| fail(&format!("{}: {e}", inputs[0])));
    let snapshots: Vec<RtmSnapshot> = inputs
        .iter()
        .map(|p| {
            load_snapshot(Path::new(p), Some(fingerprint))
                .unwrap_or_else(|e| fail(&format!("{p}: {e}")))
                .1
        })
        .collect();
    let outcome = RtmSnapshot::merge_detailed_with(&snapshots, flags.policy)
        .unwrap_or_else(|e| fail(&format!("merge: {e}")));
    save_snapshot(Path::new(out), fingerprint, &outcome.snapshot)
        .unwrap_or_else(|e| fail(&format!("{out}: {e}")));
    println!(
        "merged {} snapshots ({} traces) into {out} [{}]: {} traces, \
         {} duplicates coalesced, {} conflicts resolved, {} evicted",
        inputs.len(),
        outcome.input_traces,
        flags.policy.label(),
        outcome.snapshot.len(),
        outcome.duplicates,
        outcome.conflicts,
        outcome.evictions
    );
    if outcome.conflicts > 0 {
        eprintln!(
            "warning: {} conflicting records (same PC, live-ins and length; different \
             outputs) — the inputs disagree about this program's execution; \
             newest input won",
            outcome.conflicts
        );
    }
}

fn cmd_compact(dir: &str, flags: &Flags) {
    use std::collections::BTreeMap;
    use std::path::PathBuf;
    use trace_reuse::persist::{base_file_name, load_merged_snapshots_tuned};

    let dir_path = Path::new(dir);
    let entries = std::fs::read_dir(dir_path)
        .unwrap_or_else(|e| fail(&format!("cannot read snapshot directory {dir}: {e}")));
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.unwrap_or_else(|e| fail(&format!("{dir}: {e}")));
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("tlrsnap") && path.is_file() {
            files.push(path);
        }
    }
    if files.is_empty() {
        fail(&format!("no snapshot files (*.tlrsnap) in {dir}"));
    }
    // Deterministic order: lexicographic sorts a program's base file
    // before its delta segments, and the loader replays deltas by
    // embedded sequence number regardless of file order.
    files.sort();
    let mut groups: BTreeMap<u64, Vec<PathBuf>> = BTreeMap::new();
    for path in files {
        let fingerprint = peek_snapshot_fingerprint(&path)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        groups.entry(fingerprint).or_default().push(path);
    }
    let mut compacted = 0usize;
    for (fingerprint, paths) in &groups {
        let base = dir_path.join(base_file_name(*fingerprint));
        if paths.len() == 1 && paths[0] == base {
            println!("{fingerprint:016x}: already a lone base file, nothing to fold");
            continue;
        }
        let (_, snapshot) = load_merged_snapshots_tuned(
            paths,
            Some(*fingerprint),
            flags.policy,
            flags.lfu_half_life,
        )
        .unwrap_or_else(|e| fail(&format!("{fingerprint:016x}: {e}")));
        // Write the fresh base next to the inputs, then rename into
        // place, so a crash mid-compaction never leaves a half-written
        // base where loaders can see it.
        let tmp = base.with_extension("tmp");
        save_snapshot(&tmp, *fingerprint, &snapshot)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", tmp.display())));
        if flags.keep_deltas {
            for path in paths {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    fail(&format!(
                        "{}: snapshot file name is not UTF-8",
                        path.display()
                    ));
                };
                let bak = path.with_file_name(format!("{name}.bak"));
                std::fs::rename(path, &bak)
                    .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
            }
        }
        std::fs::rename(&tmp, &base).unwrap_or_else(|e| fail(&format!("{}: {e}", base.display())));
        if !flags.keep_deltas {
            for path in paths {
                if *path != base {
                    std::fs::remove_file(path)
                        .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
                }
            }
        }
        println!(
            "{fingerprint:016x}: folded {} files ({} traces) into {} [{} pooling]{}",
            paths.len(),
            snapshot.len(),
            base.display(),
            flags.policy.label(),
            if flags.keep_deltas {
                "; originals kept as *.bak"
            } else {
                ""
            }
        );
        compacted += 1;
    }
    println!(
        "compacted {compacted} of {} programs in {dir}",
        groups.len()
    );
}

/// Pinned parameters of the golden-trace corpus. The corpus is
/// canonical: regeneration must be byte-identical on every machine, so
/// the budget, seed and engine configuration are compiled in rather
/// than taken from flags (`--out` only moves the directory).
const GOLDEN_BUDGET: u64 = 3_000;
const GOLDEN_SEED: u64 = 20260611;
const GOLDEN_RTM: RtmConfig = RtmConfig::RTM_4K;
const GOLDEN_HEURISTIC: Heuristic = Heuristic::FixedExp(4);
/// JSON schema tag of the corpus manifest.
const GOLDEN_FORMAT: &str = "tlr-golden-v1";

/// Record the full corpus into `dir`: one binary trace per built-in
/// workload plus `manifest.json` carrying the expected replay counts
/// and the architectural-state / decision digests under every
/// replacement policy.
fn golden_generate(dir: &Path) {
    use std::collections::BTreeMap;
    use trace_reuse::persist::json::{self, Json};

    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
    let hex = |v: u64| Json::Str(format!("{v:016x}"));
    let mut entries = BTreeMap::new();
    for w in tlr_workloads::all() {
        let program = w.program(GOLDEN_SEED);
        let fingerprint = program_fingerprint(&program);
        let shape = program_shape_fingerprint(&program);
        let trace_name = format!("{}.tlrtrace", w.name);
        let trace_path = dir.join(&trace_name);

        let mut vm = Vm::new(&program);
        let mut sink = TraceWriter::create(&trace_path, fingerprint)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", trace_path.display())));
        let outcome = vm
            .run(GOLDEN_BUDGET, &mut sink)
            .unwrap_or_else(|e| fail(&format!("{}: runtime error: {e}", w.name)));
        let halted = matches!(outcome, RunOutcome::Halted { .. });
        sink.set_halted(halted);
        let records = sink
            .close()
            .unwrap_or_else(|e| fail(&format!("{}: {e}", trace_path.display())));

        let mut policies = BTreeMap::new();
        for &policy in &ReplacementPolicy::ALL {
            let config = EngineConfig::paper(GOLDEN_RTM, GOLDEN_HEURISTIC).with_policy(policy);
            let mut engine = TraceReuseEngine::new(&program, config);
            engine.enable_tap_with_cap(usize::try_from(GOLDEN_BUDGET).unwrap_or(usize::MAX));
            engine
                .run(GOLDEN_BUDGET)
                .unwrap_or_else(|e| fail(&format!("{} [{policy}]: engine error: {e}", w.name)));
            let mut digests = BTreeMap::new();
            digests.insert("state".to_string(), hex(engine.vm().state_digest()));
            digests.insert(
                "decisions".to_string(),
                hex(engine.tap().expect("tap was enabled").digest()),
            );
            policies.insert(policy.label().to_string(), Json::Obj(digests));
        }

        let mut entry = BTreeMap::new();
        entry.insert("trace".to_string(), Json::Str(trace_name));
        entry.insert("fingerprint".to_string(), hex(fingerprint));
        entry.insert("shape".to_string(), hex(shape));
        entry.insert("records".to_string(), Json::Num(records));
        entry.insert("halted".to_string(), Json::Bool(halted));
        entry.insert("vm_digest".to_string(), hex(vm.state_digest()));
        entry.insert("policies".to_string(), Json::Obj(policies));
        entries.insert(w.name.to_string(), Json::Obj(entry));
    }
    let mut config = BTreeMap::new();
    config.insert("budget".to_string(), Json::Num(GOLDEN_BUDGET));
    config.insert("seed".to_string(), Json::Num(GOLDEN_SEED));
    config.insert("rtm".to_string(), Json::Str(GOLDEN_RTM.label().to_string()));
    config.insert(
        "heuristic".to_string(),
        Json::Str(GOLDEN_HEURISTIC.label().to_string()),
    );
    let mut doc = BTreeMap::new();
    doc.insert("format".to_string(), Json::Str(GOLDEN_FORMAT.to_string()));
    doc.insert("config".to_string(), Json::Obj(config));
    doc.insert("entries".to_string(), Json::Obj(entries));
    let manifest = dir.join("manifest.json");
    std::fs::write(&manifest, json::to_string_pretty(&Json::Obj(doc)))
        .unwrap_or_else(|e| fail(&format!("{}: {e}", manifest.display())));
}

fn cmd_golden(flags: &Flags) {
    let corpus = flags.out.clone().unwrap_or_else(|| "tests/golden".into());
    let corpus = Path::new(&corpus);
    if flags.regen {
        golden_generate(corpus);
        println!(
            "golden corpus regenerated in {} ({} workloads, budget {}, seed {})",
            corpus.display(),
            tlr_workloads::all().len(),
            GOLDEN_BUDGET,
            GOLDEN_SEED
        );
        return;
    }
    // Staleness gate: regenerate into a scratch directory and
    // byte-compare, so code drift that changes traces or digests is
    // caught even when no test asserts on the drifted value.
    let fresh = std::env::temp_dir().join(format!("tlr-golden-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fresh);
    golden_generate(&fresh);
    let names = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", dir.display())))
            .map(|entry| {
                entry
                    .unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())))
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .filter(|n| n == "manifest.json" || n.ends_with(".tlrtrace"))
            .collect();
        names.sort();
        names
    };
    let expected = names(&fresh);
    let checked_in = names(corpus);
    let mut drifted = Vec::new();
    for name in &expected {
        if !checked_in.contains(name) {
            drifted.push(format!("{name}: missing from {}", corpus.display()));
            continue;
        }
        let fresh_bytes =
            std::fs::read(fresh.join(name)).unwrap_or_else(|e| fail(&format!("{name}: {e}")));
        let corpus_bytes =
            std::fs::read(corpus.join(name)).unwrap_or_else(|e| fail(&format!("{name}: {e}")));
        if fresh_bytes != corpus_bytes {
            drifted.push(format!("{name}: differs from regeneration"));
        }
    }
    for name in &checked_in {
        if !expected.contains(name) {
            drifted.push(format!(
                "{name}: stale (regeneration no longer produces it)"
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&fresh);
    if drifted.is_empty() {
        println!(
            "golden corpus up to date ({} files match regeneration)",
            expected.len()
        );
    } else {
        for line in &drifted {
            eprintln!("golden drift: {line}");
        }
        fail(&format!(
            "golden corpus is stale ({} file(s) drifted) — run `tlrsim golden --regen` \
             and commit the result",
            drifted.len()
        ));
    }
}

fn cmd_serve(flags: &Flags) {
    let dir = flags
        .snapshots
        .as_deref()
        .unwrap_or_else(|| fail("serve needs --snapshots DIR"));
    let registry = SnapshotRegistry::open(
        Path::new(dir),
        RegistryConfig {
            policy: flags.policy,
            lfu_half_life: flags.lfu_half_life,
            ..RegistryConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("{dir}: {e}")));
    println!(
        "registry over {dir}: snapshots for {} programs [{} pooling]",
        registry.fingerprints().len(),
        flags.policy.label()
    );
    // Both serve modes share the registry and its background refresh
    // ticker; they differ only in who the clients are (other processes
    // over the socket vs workload threads in this process).
    let registry = std::sync::Arc::new(registry);
    let _ticker = (flags.refresh_secs > 0).then(|| {
        RefreshTicker::spawn(
            std::sync::Arc::clone(&registry),
            std::time::Duration::from_secs(flags.refresh_secs),
        )
    });
    // --listen: host the registry as the tlrd daemon instead of driving
    // workloads in this process. Runs until killed (or until a handle
    // from the library API shuts it down); clients connect with
    // `tlrsim run --remote SOCK` or `tlr_serve::RemoteRegistry`.
    if let Some(sock) = flags.listen.as_deref() {
        let daemon = Daemon::bind(Path::new(sock), registry)
            .unwrap_or_else(|e| fail(&format!("{sock}: {e}")));
        println!(
            "tlrd listening on {sock} (protocol v{}, refresh every {}s)",
            tlr_serve::PROTOCOL_VERSION,
            flags.refresh_secs
        );
        daemon
            .run()
            .unwrap_or_else(|e| fail(&format!("daemon: {e}")));
        return;
    }
    let registry = registry.as_ref();
    let config = EngineConfig::paper(flags.rtm, flags.heuristic)
        .with_policy(flags.policy)
        .with_lfu_half_life(flags.lfu_half_life);
    let workloads = tlr_workloads::all();
    let threads = if flags.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(workloads.len())
    } else {
        flags.threads.min(workloads.len())
    }
    .max(1);

    let work = std::sync::Mutex::new(workloads);
    let registry_ref = &registry;
    let lines = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let Some(w) = work.lock().unwrap().pop() else {
                    break;
                };
                let program = w.program(flags.seed);
                let fingerprint = program_fingerprint(&program);
                let shape = program_shape_fingerprint(&program);
                // Shape-resolved fetch: a directory populated by runs
                // of the same workloads under a *different* seed still
                // warm-starts this one.
                let warm = registry_ref
                    .get_by_shape(fingerprint, shape)
                    .unwrap_or_else(|e| fail(&format!("{}: {e}", w.name)));
                let mut engine = match &warm {
                    Some(snapshot) => TraceReuseEngine::new_warm(&program, config, snapshot),
                    None => TraceReuseEngine::new(&program, config),
                };
                engine.set_source_run(flags.seed);
                let stats = engine
                    .run(flags.budget)
                    .unwrap_or_else(|e| fail(&format!("{}: engine error: {e}", w.name)));
                let mut spilled = String::new();
                if let Some(mut snapshot) = engine.export_rtm() {
                    snapshot.shape = shape;
                    registry_ref
                        .publish(fingerprint, &snapshot)
                        .unwrap_or_else(|e| fail(&format!("{}: publish: {e}", w.name)));
                    if flags.save {
                        // Spill the published entry back to the
                        // directory incrementally: only the PC groups
                        // that changed since the last spill go to disk,
                        // as a delta segment next to the base file.
                        use trace_reuse::serve::SpillKind;
                        let outcome = registry_ref
                            .spill(fingerprint)
                            .unwrap_or_else(|e| fail(&format!("{}: spill: {e}", w.name)));
                        spilled = match outcome.kind {
                            SpillKind::NoChange => " [spill: no change]".into(),
                            SpillKind::Base => {
                                format!(" [spill: base, {} B]", outcome.bytes_written)
                            }
                            SpillKind::Delta => format!(
                                " [spill: delta, {} groups, {} B]",
                                outcome.delta_groups, outcome.bytes_written
                            ),
                            SpillKind::Compacted => format!(
                                " [spill: compacted {} files, {} B]",
                                outcome.removed_files, outcome.bytes_written
                            ),
                        };
                    }
                }
                lines.lock().unwrap().push(format!(
                    "{:10} {:16x} {}: {:5.1}% reused ({} reuse ops){spilled}",
                    w.name,
                    fingerprint,
                    if warm.is_some() { "warm" } else { "cold" },
                    stats.pct_reused(),
                    stats.reuse_ops
                ));
            });
        }
    });
    let mut lines = lines.into_inner().unwrap();
    lines.sort();
    for line in lines {
        println!("{line}");
    }
    let stats = registry_ref.stats();
    println!(
        "registry: {} resident, {} hits, {} misses, {} refreshes, {} evicted, {} unknown, \
         {} image hits / {} builds / {} invalidations",
        stats.resident,
        stats.hits,
        stats.misses,
        stats.refreshes,
        stats.evicted,
        stats.unknown,
        stats.image_hits,
        stats.image_builds,
        stats.image_invalidations
    );
}

fn cmd_disasm(path: &str, flags: &Flags) {
    let program = load(path, flags.seed);
    print!("{}", program.disassemble());
    if !program.data.is_empty() {
        println!("; data image: {} initialized words", program.data.len());
    }
}

fn cmd_analyze(path: &str, flags: &Flags) {
    let program = load(path, flags.seed);
    let mut vm = Vm::new(&program);
    let mut sink = LimitStudySink::new(
        tlr_core::LimitConfig {
            window: flags.window,
            ..Default::default()
        },
        &Alpha21164,
    );
    vm.run(flags.budget, &mut sink)
        .unwrap_or_else(|e| fail(&format!("runtime error: {e}")));
    let res = sink.result();
    println!("analyzed {} dynamic instructions", res.total_instrs);
    println!("instruction-level reusability: {:.1}%", res.reusability_pct);
    println!(
        "base IPC: {:.2} (infinite window) / {:.2} (W={})",
        res.base_inf.ipc, res.base_win.ipc, flags.window
    );
    println!(
        "speed-up @1-cycle reuse: ILR {:.2}/{:.2}, TLR {:.2}/{:.2} (infinite / W={})",
        res.ilr_speedup_inf(1),
        res.ilr_speedup_win(1),
        res.tlr_speedup_inf(1),
        res.tlr_speedup_win(1),
        flags.window
    );
    let ts = &res.trace_stats;
    println!(
        "maximal reusable traces: {} (avg {:.1} instrs, {:.1} in / {:.1} out values)",
        ts.traces,
        ts.avg_size(),
        ts.avg_inputs(),
        ts.avg_outputs()
    );
}

fn cmd_decant(path: &str, flags: &Flags) {
    use trace_reuse::persist::json::{self, Json};
    use trace_reuse::stats::Table;

    let program = load(path, flags.seed);
    let config = EngineConfig::paper(flags.rtm, flags.heuristic)
        .with_policy(flags.policy)
        .with_lfu_half_life(flags.lfu_half_life);
    let mut engine = TraceReuseEngine::new(&program, config);
    engine.set_source_run(flags.seed);
    // One decision covers at least one instruction, so a budget-sized
    // cap never truncates the tap.
    engine.enable_tap_with_cap(usize::try_from(flags.budget).unwrap_or(usize::MAX));
    let stats = engine
        .run(flags.budget)
        .unwrap_or_else(|e| fail(&format!("engine error: {e}")));
    let log = engine.tap().expect("tap was enabled");
    let attribution = trace_reuse::decant::decant(log);
    if let Err(msg) = attribution.verify(log) {
        fail(&format!(
            "attribution failed to conserve the log's totals: {msg}"
        ));
    }
    println!(
        "{}: {} total instructions ({} executed, {} skipped, {:.1}% reused) \
         [{} {} {}]",
        if stats.halted {
            "halted"
        } else {
            "budget exhausted"
        },
        stats.total(),
        stats.executed,
        stats.skipped,
        stats.pct_reused(),
        flags.rtm.label(),
        flags.heuristic.label(),
        flags.policy.label()
    );
    println!();
    println!("attribution by opcode class:");
    println!("{}", attribution.class_table(&Alpha21164).to_text());
    println!("attribution by loop structure:");
    println!("{}", attribution.loop_table().to_text());
    let weights = attribution.class_weights(&Alpha21164);
    let weight_list: Vec<String> = tlr_isa::OpClass::ALL
        .iter()
        .map(|&c| format!("{}={}", c.label(), weights.get(c)))
        .collect();
    println!("measured class weights: {}", weight_list.join(" "));
    // Greppable conservation line — the CI smoke test asserts on it.
    println!(
        "decant totals: exact (executed {}, skipped {}, reuse ops {}, \
         unattributed {}, dropped {})",
        attribution.executed,
        attribution.skipped,
        attribution.reuse_ops,
        attribution.unattributed,
        attribution.dropped
    );
    let Some(out) = flags.out.as_deref() else {
        return;
    };
    let table_json = |table: &Table| -> Json {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert(
            "headers".into(),
            Json::Arr(
                table
                    .headers()
                    .iter()
                    .map(|h| Json::Str(h.clone()))
                    .collect(),
            ),
        );
        obj.insert(
            "rows".into(),
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|cell| Json::Str(cell.clone())).collect()))
                    .collect(),
            ),
        );
        Json::Obj(obj)
    };
    let mut totals = std::collections::BTreeMap::new();
    totals.insert("executed".into(), Json::Num(attribution.executed));
    totals.insert("skipped".into(), Json::Num(attribution.skipped));
    totals.insert("reuse_ops".into(), Json::Num(attribution.reuse_ops));
    totals.insert("unattributed".into(), Json::Num(attribution.unattributed));
    totals.insert("dropped".into(), Json::Num(attribution.dropped));
    let mut weight_obj = std::collections::BTreeMap::new();
    for &class in &tlr_isa::OpClass::ALL {
        weight_obj.insert(
            class.label().to_string(),
            Json::Num(u64::from(weights.get(class))),
        );
    }
    let mut doc = std::collections::BTreeMap::new();
    doc.insert("format".into(), Json::Str("tlr-decant-v1".into()));
    doc.insert("program".into(), Json::Str(path.into()));
    doc.insert("budget".into(), Json::Num(flags.budget));
    doc.insert("policy".into(), Json::Str(flags.policy.label().into()));
    doc.insert("totals".into(), Json::Obj(totals));
    doc.insert(
        "classes".into(),
        table_json(&attribution.class_table(&Alpha21164)),
    );
    doc.insert("loops".into(), table_json(&attribution.loop_table()));
    doc.insert("class_weights".into(), Json::Obj(weight_obj));
    std::fs::write(out, json::to_string_pretty(&Json::Obj(doc)))
        .unwrap_or_else(|e| fail(&format!("{out}: {e}")));
    println!("wrote attribution to {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage_error("no subcommand given")
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        usage();
    }
    // Leading positional arguments (program / snapshot files), then flags.
    let positional: Vec<String> = rest
        .iter()
        .take_while(|a| !a.starts_with('-'))
        .cloned()
        .collect();
    let flags = parse_flags(&rest[positional.len()..]);
    match (cmd.as_str(), positional.as_slice()) {
        ("run", [file]) => cmd_run(file, &flags),
        ("disasm", [file]) => cmd_disasm(file, &flags),
        ("analyze", [file]) => cmd_analyze(file, &flags),
        ("decant", [file]) => cmd_decant(file, &flags),
        ("record", [file]) => cmd_record(file, &flags),
        ("replay", [file]) => cmd_replay(file, &flags),
        ("snapshot", [file]) => cmd_snapshot(file, &flags),
        ("merge", inputs) if !inputs.is_empty() => cmd_merge(inputs, &flags),
        ("compact", [dir]) => cmd_compact(dir, &flags),
        ("golden", []) => cmd_golden(&flags),
        ("serve", []) => cmd_serve(&flags),
        ("run" | "disasm" | "analyze" | "decant" | "record" | "replay" | "snapshot", files) => {
            usage_error(&format!(
                "'{cmd}' takes exactly one program file, got {}",
                files.len()
            ))
        }
        ("merge", []) => usage_error("'merge' needs at least one input snapshot"),
        ("compact", dirs) => usage_error(&format!(
            "'compact' takes exactly one snapshot directory, got {}",
            dirs.len()
        )),
        ("serve", files) => usage_error(&format!(
            "'serve' takes no positional arguments, got {} (use --snapshots DIR)",
            files.len()
        )),
        ("golden", files) => usage_error(&format!(
            "'golden' takes no positional arguments, got {} (use --out DIR)",
            files.len()
        )),
        _ => usage_error(&format!("unknown subcommand '{cmd}'")),
    }
}
