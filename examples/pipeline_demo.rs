//! Drive the §3 superscalar pipeline model with and without the Reuse
//! Trace Memory, and decompose where the win comes from.
//!
//! ```sh
//! cargo run --release --example pipeline_demo [benchmark] [budget]
//! ```

use trace_reuse::pipeline::run_ablation;
use trace_reuse::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "ijpeg".to_string());
    let budget: u64 = args
        .next()
        .map(|s| s.parse().expect("budget must be a number"))
        .unwrap_or(200_000);

    let workload = tlr_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(2);
    });
    let program = workload.program(13);

    println!(
        "pipeline model on '{}': 4-wide fetch, 256-entry window, RTM 4K, I4 EXP\n",
        workload.name
    );
    let rows = run_ablation(
        &program,
        RtmConfig::RTM_4K,
        tlr_core::Heuristic::FixedExp(4),
        budget,
    )
    .expect("pipeline run failed");

    println!(
        "{:28} {:>10} {:>8} {:>12} {:>14}",
        "configuration", "cycles", "IPC", "fetched", "reused instrs"
    );
    for row in &rows {
        println!(
            "{:28} {:>10} {:>8.2} {:>12} {:>14}",
            row.label,
            row.stats.cycles,
            row.stats.ipc(),
            row.stats.fetched,
            row.stats.reused_instrs
        );
    }

    let base = &rows[0].stats;
    let full = &rows[1].stats;
    println!(
        "\nspeed-up from trace reuse: {:.2}x; {:.0}% of instructions never touched fetch",
        base.cycles as f64 / full.cycles.max(1) as f64,
        100.0 * full.fetch_saving()
    );
}
