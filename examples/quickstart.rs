//! Quickstart: assemble a small program, run it under the trace-reuse
//! engine, and inspect what got skipped.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trace_reuse::prelude::*;

fn main() {
    // A toy kernel: repeatedly sum the squares of a small table. After
    // the first pass, every iteration recomputes exactly the same values
    // — ideal food for trace-level reuse.
    let program = assemble(
        r#"
        .org    0x100
table:  .word   3, 1, 4, 1, 5, 9, 2, 6

        li      r9, 500             ; outer repetitions
outer:  li      r1, table
        li      r2, 8
        li      r5, 0
inner:  ldq     r3, 0(r1)
        mulq    r4, r3, r3
        addq    r5, r5, r4
        addq    r1, r1, 1
        subq    r2, r2, 1
        bnez    r2, inner
        stq     r5, 64(zero)        ; publish the sum
        subq    r9, r9, 1
        bnez    r9, outer
        halt
        "#,
    )
    .expect("assembly failed");

    // Plain run, for reference.
    let mut vm = Vm::new(&program);
    let outcome = vm.run(1_000_000, &mut NullSink).unwrap();
    println!(
        "plain run: {} instructions, sum-of-squares = {}",
        outcome.executed(),
        vm.peek_loc(Loc::Mem(64))
    );

    // The same program under the reuse engine: a 4K-entry Reuse Trace
    // Memory with fixed-length-4 trace collection and dynamic expansion.
    let mut engine = TraceReuseEngine::new(
        &program,
        EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
    );
    let stats = engine.run(1_000_000).unwrap();
    assert_eq!(
        engine.vm().peek_loc(Loc::Mem(64)),
        vm.peek_loc(Loc::Mem(64)),
        "reuse must preserve architectural state"
    );

    println!(
        "reuse run: {} executed + {} skipped via {} reuse ops",
        stats.executed, stats.skipped, stats.reuse_ops
    );
    println!(
        "           {:.1}% of dynamic instructions were never fetched or executed",
        stats.pct_reused()
    );
    println!(
        "           average reused trace: {:.1} instructions",
        stats.avg_reused_trace_size()
    );
    println!(
        "           RTM: {} lookups, {} hits, {} stored traces",
        stats.rtm.lookups, stats.rtm.hits, stats.rtm.stores
    );
}
