//! Explore the Reuse Trace Memory design space on one workload: RTM
//! capacity × collection heuristic, the axes of the paper's Figure 9.
//!
//! ```sh
//! cargo run --release --example rtm_design_space [benchmark] [budget]
//! ```

use trace_reuse::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "compress".to_string());
    let budget: u64 = args
        .next()
        .map(|s| s.parse().expect("budget must be a number"))
        .unwrap_or(200_000);

    let workload = tlr_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(2);
    });
    let program = workload.program(7);

    println!(
        "RTM design space on '{}' ({} dynamic instructions per cell)\n",
        workload.name, budget
    );
    println!(
        "{:10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "heuristic", "RTM", "% reused", "avg trace", "hits", "evictions"
    );

    // The paper's Figure 9 sweep, plus Huang & Lilja's basic-block
    // policy as a baseline (§2 calls block reuse a special case of
    // trace-level reuse).
    let mut heuristics = tlr_core::Heuristic::paper_sweep();
    heuristics.push(tlr_core::Heuristic::BasicBlock);
    for heuristic in heuristics {
        for rtm in RtmConfig::PAPER_SWEEP {
            let mut engine = TraceReuseEngine::new(&program, EngineConfig::paper(rtm, heuristic));
            let stats = engine.run(budget).expect("engine run failed");
            println!(
                "{:10} {:>10} {:>11.1}% {:>12.2} {:>10} {:>10}",
                heuristic.label(),
                rtm.label(),
                stats.pct_reused(),
                stats.avg_reused_trace_size(),
                stats.rtm.hits,
                stats.rtm.evictions
            );
        }
        println!();
    }
}
