//! Write your own workload two ways — assembly text and the programmatic
//! builder — and analyze its reuse profile.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use tlr_isa::{FReg, Reg};
use trace_reuse::prelude::*;

/// A string-hashing kernel in assembly text.
fn text_version() -> Program {
    assemble(
        r#"
        .equ    N, 32
        .org    0x200
data:   .word   7, 2, 9, 4, 1, 8, 3, 6, 7, 2, 9, 4, 1, 8, 3, 6
        .word   7, 2, 9, 4, 1, 8, 3, 6, 7, 2, 9, 4, 1, 8, 3, 6

        li      r9, 300
outer:  li      r1, data
        li      r2, N
        li      r3, 5381            ; djb2 seed
loop:   ldq     r4, 0(r1)
        mulq    r3, r3, 33
        addq    r3, r3, r4
        addq    r1, r1, 1
        subq    r2, r2, 1
        bnez    r2, loop
        stq     r3, 0x100(zero)
        subq    r9, r9, 1
        bnez    r9, outer
        halt
        "#,
    )
    .expect("assembly failed")
}

/// An equivalent numeric kernel via [`ProgramBuilder`] — handy when the
/// code itself is generated (unrolled loops, parameterized bodies).
fn builder_version() -> Program {
    let mut b = ProgramBuilder::new();
    let (r1, r2, r3, r9) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(9));
    let (f1, f2) = (FReg::new(1), FReg::new(2));

    b.org(0x200);
    let data = b.doubles(&[1.5, 2.25, 3.0, 0.5, 1.25, 2.0, 0.75, 1.0]);

    b.li(r9, 300);
    let outer = b.here();
    b.li(r1, data as i64);
    b.li(r2, 8);
    let inner = b.here();
    b.ldt(f1, 0, r1);
    b.mult(f2, f1, f1);
    b.stt(f2, 64, r1);
    b.addq(r1, r1, 1);
    b.subq(r2, r2, 1);
    b.bnez(r2, inner);
    b.subq(r9, r9, 1);
    b.bnez(r9, outer);
    b.li(r3, 0);
    b.halt();
    b.build()
}

fn analyze(label: &str, program: &Program) {
    let mut vm = Vm::new(program);
    let mut ilr = InstrReuseTable::new();
    struct Sink<'a>(&'a mut InstrReuseTable);
    impl StreamSink for Sink<'_> {
        fn observe(&mut self, d: &DynInstr) {
            self.0.probe_insert(d);
        }
    }
    vm.run(100_000, &mut Sink(&mut ilr)).expect("run failed");
    println!(
        "{label:18} {:>8} instrs, {:>5.1}% reusable, {} static instrs, {} stored input tuples",
        ilr.observed(),
        ilr.reusability_pct(),
        ilr.static_instrs(),
        ilr.stored_tuples()
    );

    let mut engine = TraceReuseEngine::new(
        program,
        EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::IlrExp),
    );
    let stats = engine.run(100_000).expect("engine failed");
    println!(
        "{:18} engine: {:.1}% reused, avg trace {:.1}",
        "", // continuation line
        stats.pct_reused(),
        stats.avg_reused_trace_size()
    );
}

fn main() {
    println!("disassembly of the text version (first 8 instructions):");
    for (i, instr) in text_version().instrs.iter().take(8).enumerate() {
        println!("  {i:3}: {instr}");
    }
    println!();
    analyze("assembly text", &text_version());
    analyze("program builder", &builder_version());
}
