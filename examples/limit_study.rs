//! Reproduce the paper's limit-study methodology on one benchmark:
//! instruction-level vs trace-level reuse under infinite history tables
//! (§4.2–§4.5 of the paper), on both window models.
//!
//! ```sh
//! cargo run --release --example limit_study [benchmark] [budget]
//! ```

use trace_reuse::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "ijpeg".to_string());
    let budget: u64 = args
        .next()
        .map(|s| s.parse().expect("budget must be a number"))
        .unwrap_or(200_000);

    let workload = tlr_workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'; available:");
        for w in tlr_workloads::all() {
            eprintln!("  {:9} - {}", w.name, w.description);
        }
        std::process::exit(2);
    });

    println!("== {} ==\n{}\n", workload.name, workload.description);

    let program = workload.program(2026);
    let mut vm = Vm::new(&program);
    let mut sink = LimitStudySink::new(LimitConfig::default(), &Alpha21164);
    vm.run(budget, &mut sink).expect("workload must execute");
    let res = sink.result();

    println!(
        "{} dynamic instructions analyzed; {:.1}% reusable at instruction level",
        res.total_instrs, res.reusability_pct
    );
    println!(
        "base machine: {:.2} IPC (infinite window) / {:.2} IPC (256-entry window)",
        res.base_inf.ipc, res.base_win.ipc
    );
    println!();
    println!("speed-ups at 1-cycle reuse latency:");
    println!(
        "  instruction-level reuse:  {:.2} (infinite)   {:.2} (W=256)",
        res.ilr_speedup_inf(1),
        res.ilr_speedup_win(1)
    );
    println!(
        "  trace-level reuse:        {:.2} (infinite)   {:.2} (W=256)",
        res.tlr_speedup_inf(1),
        res.tlr_speedup_win(1)
    );
    println!();
    println!("latency sensitivity (W=256):");
    for lat in [1u64, 2, 3, 4] {
        println!(
            "  latency {lat}: ILR {:.2}   TLR {:.2}",
            res.ilr_speedup_win(lat),
            res.tlr_speedup_win(lat)
        );
    }
    println!();
    let ts = &res.trace_stats;
    println!(
        "maximal reusable traces: {} traces, {:.1} instructions each on average",
        ts.traces,
        ts.avg_size()
    );
    println!(
        "per trace: {:.1} inputs, {:.1} outputs -> {:.2} reads and {:.2} writes per reused instruction",
        ts.avg_inputs(),
        ts.avg_outputs(),
        ts.reads_per_reused_instr(),
        ts.writes_per_reused_instr()
    );
}
