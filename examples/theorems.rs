//! Walk through the paper's theorems (§4.4 and the appendix) with live
//! data: Theorem 1 checked over a real workload's stream, and Theorem 2
//! demonstrated on the appendix's counterexample.
//!
//! ```sh
//! cargo run --release --example theorems
//! ```

use tlr_core::theorems::{check_theorem1, check_theorem3, theorem2_counterexample};
use tlr_core::InstrReuseTable;
use trace_reuse::prelude::*;

fn main() {
    // ---- Theorem 1 on a real stream --------------------------------
    println!("Theorem 1: if a trace is reusable, every instruction in it is reusable.\n");
    let w = tlr_workloads::by_name("compress").unwrap();
    let program = w.program_with(1, 20);
    let mut vm = Vm::new(&program);
    let mut sink = CollectSink::default();
    vm.run(60_000, &mut sink).unwrap();

    for trace_len in [2usize, 4, 8, 16] {
        let res = check_theorem1(&sink.records, trace_len);
        println!(
            "  compress, {}-instruction traces: {} traces, {} reusable, {} violations",
            trace_len, res.traces, res.reusable_traces, res.violations
        );
        assert_eq!(res.violations, 0, "theorem 1 must hold");
    }
    let t3 = check_theorem3(&sink.records, 4, 4);
    println!(
        "  theorem 3 (16 = 4x4 nesting): {} traces, {} reusable, {} violations\n",
        t3.traces, t3.reusable_traces, t3.violations
    );

    // ---- Theorem 2: the appendix's counterexample -------------------
    println!("Theorem 2: all instructions reusable does NOT imply the trace is.\n");
    let (stream, trace_len) = theorem2_counterexample();
    let mut table = InstrReuseTable::new();
    println!("  instr stream (pc: reads -> individually reusable?):");
    let flags: Vec<bool> = stream
        .iter()
        .map(|d| {
            let r = table.probe_insert(d);
            let (loc, val) = d.reads[0];
            println!(
                "    pc {}: {loc} = {val:<4} -> {}",
                d.pc,
                if r { "yes" } else { "no" }
            );
            r
        })
        .collect();
    assert!(flags[stream.len() - 2] && flags[stream.len() - 1]);
    let res = check_theorem1(&stream, trace_len);
    println!(
        "\n  final 2-instruction trace: both members reusable, \
         trace-level reusable instances: {} (of {} traces)",
        res.reusable_traces, res.traces
    );
    assert_eq!(res.reusable_traces, 0);
    println!("  -> the trace as a whole never repeated its live-in set. QED (by example).");
}
