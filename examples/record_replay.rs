//! Record → replay → snapshot → warm-start, end to end.
//!
//! ```text
//! cargo run --example record_replay
//! ```
//!
//! 1. records a full execution of a hot-loop program to a `.tlrtrace`
//!    stream and replays it with divergence checking;
//! 2. runs the reuse engine cold, snapshots its RTM to a `.tlrsnap`
//!    file, and re-runs warm from the snapshot;
//! 3. prints the cold vs warm reuse rates.

use std::path::PathBuf;
use trace_reuse::persist::{
    load_snapshot, program_fingerprint, replay, save_snapshot, TraceReader, TraceWriter,
};
use trace_reuse::prelude::*;

const PROGRAM: &str = r#"
        .org 0x100
tab:    .word 2, 4, 6, 8
        li      r9, 50
outer:  li      r1, tab
        li      r2, 4
        li      r5, 0
inner:  ldq     r3, 0(r1)
        addq    r5, r5, r3
        addq    r1, r1, 1
        subq    r2, r2, 1
        bnez    r2, inner
        stq     r5, 64(zero)
        subq    r9, r9, 1
        bnez    r9, outer
        halt
"#;

fn main() {
    let program = assemble(PROGRAM).expect("assembly failed");
    let fingerprint = program_fingerprint(&program);
    let dir = std::env::temp_dir().join("tlr-record-replay-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace_path: PathBuf = dir.join("quickstart.tlrtrace");
    let snap_path: PathBuf = dir.join("quickstart.tlrsnap");

    // --- 1. record ---------------------------------------------------
    let mut sink = TraceWriter::create(&trace_path, fingerprint).expect("create trace");
    let mut vm = Vm::new(&program);
    let outcome = vm.run(1_000_000, &mut sink).expect("vm error");
    sink.set_halted(matches!(outcome, RunOutcome::Halted { .. }));
    let recorded = sink.close().expect("close trace");
    println!(
        "recorded  {recorded} instructions -> {}",
        trace_path.display()
    );

    // --- 2. replay with divergence checking --------------------------
    let mut reader = TraceReader::open(&trace_path, Some(fingerprint)).expect("open trace");
    let (stats, replayed_vm) = replay(&program, &mut reader).expect("replay diverged");
    assert_eq!(stats.replayed, recorded);
    assert_eq!(
        replayed_vm.peek_loc(Loc::Mem(64)),
        vm.peek_loc(Loc::Mem(64))
    );
    println!("replayed  {} instructions, no divergence", stats.replayed);

    // --- 3. cold run + RTM snapshot ----------------------------------
    let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
    let mut cold = TraceReuseEngine::new(&program, config);
    let cold_stats = cold.run(1_000_000).expect("cold engine error");
    let snapshot = cold.export_rtm().expect("snapshot");
    save_snapshot(&snap_path, fingerprint, &snapshot).expect("save snapshot");
    println!(
        "cold run  {:.1}% reused; {} traces -> {}",
        cold_stats.pct_reused(),
        snapshot.len(),
        snap_path.display()
    );

    // --- 4. warm start from the snapshot -----------------------------
    let (_, loaded) = load_snapshot(&snap_path, Some(fingerprint)).expect("load snapshot");
    let mut warm = TraceReuseEngine::new_warm(&program, config, &loaded);
    let warm_stats = warm.run(1_000_000).expect("warm engine error");
    println!(
        "warm run  {:.1}% reused ({:+.1} vs cold)",
        warm_stats.pct_reused(),
        warm_stats.pct_reused() - cold_stats.pct_reused()
    );
    assert!(warm_stats.pct_reused() >= cold_stats.pct_reused());
}
