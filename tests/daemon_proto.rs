//! Integration tests for the `tlrd` daemon: hostile bytes on the
//! server read path (malformed / truncated / bit-flipped frames) and
//! concurrent multi-client serving with consistent registry accounting.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use trace_reuse::core::{ReuseTraceMemory, RtmConfig, RtmSnapshot, TraceRecord};
use trace_reuse::isa::Loc;
use trace_reuse::persist::save_snapshot;
use trace_reuse::serve::proto::{self, Reply, Request};
use trace_reuse::serve::{Daemon, DaemonHandle, RegistryConfig, RemoteRegistry, SnapshotRegistry};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlr-daemon-proto").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot_of(values: &[u64]) -> RtmSnapshot {
    let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
    for &v in values {
        rtm.insert(TraceRecord {
            start_pc: 8,
            next_pc: 10,
            len: 2,
            ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(2), v * 3)].into_boxed_slice(),
            mix: Default::default(),
        });
    }
    rtm.export()
}

/// A daemon over a directory holding one snapshot for fingerprint 1.
fn start_daemon(
    name: &str,
) -> (
    PathBuf,
    DaemonHandle,
    std::thread::JoinHandle<Result<(), trace_reuse::serve::ServeError>>,
) {
    let dir = temp_dir(name);
    save_snapshot(&dir.join("p1.tlrsnap"), 1, &snapshot_of(&[5])).unwrap();
    let registry = Arc::new(SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap());
    let sock = dir.join("tlrd.sock");
    let daemon = Daemon::bind(&sock, registry).unwrap();
    let handle = daemon.handle();
    let server = std::thread::spawn(move || daemon.run());
    (sock, handle, server)
}

/// Write raw bytes to the daemon and drain whatever it answers until it
/// hangs up. The call must return (the server closes broken sessions)
/// and the daemon must survive.
fn poke(sock: &Path, bytes: &[u8]) -> Vec<u8> {
    let mut stream = UnixStream::connect(sock).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut answer = Vec::new();
    let _ = stream.read_to_end(&mut answer);
    answer
}

fn hello_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    proto::write_request(
        &mut buf,
        &Request::Hello {
            version: proto::PROTOCOL_VERSION,
        },
    )
    .unwrap();
    buf
}

#[test]
fn malformed_and_truncated_frames_do_not_kill_the_daemon() {
    let (sock, handle, server) = start_daemon("malformed");

    // Not the protocol at all: an HTTP-ish greeting whose first bytes
    // decode to a ~542 MB length prefix.
    poke(&sock, b"GET /snapshots HTTP/1.1\r\n\r\n");
    // An explicit oversized length prefix.
    let mut oversized = (proto::MAX_MESSAGE + 1).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 64]);
    poke(&sock, &oversized);
    // A zero length prefix.
    poke(&sock, &0u32.to_le_bytes());
    // Hello, then a frame truncated mid-payload.
    let mut truncated = hello_bytes();
    let mut get = Vec::new();
    proto::write_request(&mut get, &Request::Get { fingerprint: 1 }).unwrap();
    truncated.extend_from_slice(&get[..get.len() / 2]);
    poke(&sock, &truncated);
    // A request before Hello is refused by name.
    let answer = poke(&sock, &get);
    let reply = proto::read_reply(&mut answer.as_slice()).unwrap().unwrap();
    match reply {
        Reply::Error { code, .. } => assert_eq!(code, proto::ErrorCode::HelloRequired),
        other => panic!("expected HELLO_REQUIRED, got {other:?}"),
    }
    // A Hello with a version from the future is refused by name.
    let mut future = Vec::new();
    proto::write_request(&mut future, &Request::Hello { version: 999 }).unwrap();
    let answer = poke(&sock, &future);
    let reply = proto::read_reply(&mut answer.as_slice()).unwrap().unwrap();
    match reply {
        Reply::Error { code, .. } => {
            assert_eq!(code, proto::ErrorCode::UnsupportedVersion)
        }
        other => panic!("expected UNSUPPORTED_VERSION, got {other:?}"),
    }

    // After all that abuse a well-behaved client is served normally.
    let remote = RemoteRegistry::connect(&sock).unwrap();
    assert_eq!(remote.get(1).unwrap().unwrap().len(), 1);
    drop(remote);
    handle.shutdown();
    server.join().unwrap().unwrap();
}

#[test]
fn bit_flip_fuzz_on_the_server_read_path() {
    let (sock, handle, server) = start_daemon("bitflip");

    // A pristine session: Hello + Publish of a 30-trace snapshot.
    let mut pristine = hello_bytes();
    proto::write_request(
        &mut pristine,
        &Request::Publish {
            fingerprint: 7,
            snapshot: snapshot_of(&(100..130).collect::<Vec<u64>>()),
        },
    )
    .unwrap();

    // Flip a bit at a spread of positions covering the frame header,
    // the embedded snapshot, and the trailing checksum. The server must
    // survive every variant; damage past the Hello may be answered with
    // a named error or just a hangup, never a crash.
    for pos in (0..pristine.len()).step_by(11) {
        let mut damaged = pristine.clone();
        damaged[pos] ^= 0x08;
        poke(&sock, &damaged);
    }

    // The daemon still serves, and fingerprint 7 is either absent or
    // holds a fully validated snapshot — a damaged publish can be
    // rejected or (if the flip hit a bit the codec never reads) land,
    // but it can never wedge the registry.
    let remote = RemoteRegistry::connect(&sock).unwrap();
    assert_eq!(remote.get(1).unwrap().unwrap().len(), 1);
    if let Some(snapshot) = remote.get(7).unwrap() {
        assert!(snapshot.len() <= 30);
    }
    let stats = remote.stats().unwrap();
    assert!(stats.hits + stats.misses > 0);
    drop(remote);
    handle.shutdown();
    server.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_publish_and_get_with_consistent_stats() {
    let (sock, handle, server) = start_daemon("concurrent");
    const CLIENTS: u64 = 8;
    const GETS: u64 = 3;

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let sock = &sock;
            scope.spawn(move || {
                let remote = RemoteRegistry::connect(sock).unwrap();
                let fingerprint = 100 + client;
                // Unknown until published.
                assert!(remote.get(fingerprint).unwrap().is_none());
                remote
                    .publish(fingerprint, &snapshot_of(&[client, client + 50]))
                    .unwrap();
                for _ in 0..GETS {
                    let snapshot = remote.get(fingerprint).unwrap().expect("published state");
                    assert_eq!(snapshot.len(), 2);
                }
                // A second publish refreshes the resident entry.
                remote
                    .publish(fingerprint, &snapshot_of(&[client + 200]))
                    .unwrap();
                assert_eq!(remote.get(fingerprint).unwrap().unwrap().len(), 3);
            });
        }
    });

    // Every client's activity is visible in the aggregates: per client
    // one unknown fetch, GETS + 1 resident hits, two publish merges.
    let remote = RemoteRegistry::connect(&sock).unwrap();
    let stats = remote.stats().unwrap();
    assert_eq!(stats.unknown, CLIENTS);
    assert_eq!(stats.hits, CLIENTS * (GETS + 1));
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.refreshes, CLIENTS * 2);
    assert_eq!(stats.resident, CLIENTS);
    drop(remote);
    handle.shutdown();
    server.join().unwrap().unwrap();
}
