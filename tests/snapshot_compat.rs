//! Snapshot format-version compatibility: v3 carries per-trace
//! provenance, v4 appends a per-trace class mix, v2 files (written
//! before either existed) must still load as zero-provenance state,
//! and corrupt provenance or mixes — on the binary and the JSON path —
//! must be rejected with a named error, never silently zeroed or
//! misparsed.
//!
//! The v2/v3 writer here is hand-rolled byte-for-byte from the
//! historical layouts (header, geometry prelude, checksummed record
//! frames, trailer), so these tests keep failing loudly if the reader
//! ever drops old-version support by accident.

use std::hash::Hasher;
use std::path::PathBuf;
use tlr_core::{ReplacementPolicy, ReuseTraceMemory, RtmConfig, TraceRecord};
use tlr_isa::Loc;
use tlr_persist::{
    load_snapshot, save_snapshot, PersistError, FORMAT_VERSION, MIN_SUPPORTED_VERSION,
};
use tlr_util::fxhash::FxHasher64;
use trace_reuse::prelude::*;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlr-snapshot-compat");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn rec(pc: u32, v: u64) -> TraceRecord {
    TraceRecord {
        start_pc: pc,
        next_pc: pc + 3,
        len: 3,
        ins: vec![(Loc::IntReg(1), v), (Loc::Mem(64 + v * 8), v)].into_boxed_slice(),
        outs: vec![(Loc::IntReg(2), v * 7)].into_boxed_slice(),
        mix: Default::default(),
    }
}

// ---- a byte-level writer for historical format versions -------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_loc(out: &mut Vec<u8>, loc: Loc) {
    match loc {
        Loc::IntReg(n) => {
            out.push(0);
            out.push(n);
        }
        Loc::FpReg(n) => {
            out.push(1);
            out.push(n);
        }
        Loc::Mem(addr) => {
            out.push(2);
            put_u64(out, addr);
        }
    }
}

fn encode_record(rec: &TraceRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, rec.start_pc);
    put_u32(&mut out, rec.next_pc);
    put_u32(&mut out, rec.len);
    put_u16(&mut out, rec.ins.len() as u16);
    put_u16(&mut out, rec.outs.len() as u16);
    for (loc, val) in rec.ins.iter().chain(rec.outs.iter()) {
        put_loc(&mut out, *loc);
        put_u64(&mut out, *val);
    }
    out
}

/// Serialize a snapshot file of the given header `version` from raw
/// per-trace frame payloads (checksum and trailer computed the way the
/// reader expects them).
fn encode_snapshot_file(version: u16, fingerprint: u64, frames: &[Vec<u8>]) -> Vec<u8> {
    let geometry = RtmConfig::RTM_512.geometry;
    let mut out = Vec::new();
    out.extend_from_slice(b"TLRP");
    put_u16(&mut out, version);
    out.push(2); // kind: RTM snapshot
    out.push(0); // reserved
    put_u64(&mut out, fingerprint);

    let mut prelude = Vec::new();
    put_u32(&mut prelude, geometry.sets);
    put_u32(&mut prelude, geometry.ways);
    put_u32(&mut prelude, geometry.per_pc);
    put_u64(&mut prelude, frames.len() as u64);
    out.extend_from_slice(&prelude);

    let mut checksum = FxHasher64::new();
    checksum.write(&prelude);
    for frame in frames {
        put_u32(&mut out, frame.len() as u32);
        out.extend_from_slice(frame);
        checksum.write(frame);
    }
    put_u32(&mut out, 0);
    put_u64(&mut out, frames.len() as u64);
    put_u64(&mut out, checksum.finish());
    out
}

// ---- version compatibility ------------------------------------------------

#[test]
fn v2_snapshot_loads_as_zero_provenance() {
    assert_eq!(MIN_SUPPORTED_VERSION, 2);
    let records = [rec(8, 1), rec(16, 2), rec(24, 3)];
    let frames: Vec<Vec<u8>> = records.iter().map(encode_record).collect();
    let bytes = encode_snapshot_file(2, 77, &frames);
    let path = temp_path("v2.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();

    let (fp, snapshot) = load_snapshot(&path, Some(77)).expect("v2 snapshot must still load");
    assert_eq!(fp, 77);
    assert_eq!(snapshot.traces, records.to_vec());
    assert_eq!(snapshot.meta.len(), snapshot.traces.len());
    assert!(
        snapshot.meta.iter().all(|m| *m == TraceMeta::default()),
        "v2 snapshots carry no provenance; loading must zero it"
    );
    assert_eq!(snapshot.total_hits(), 0);

    // A v2 pool still warm-starts and merges under every policy.
    for policy in ReplacementPolicy::ALL {
        let merged = RtmSnapshot::merge_with(&[snapshot.clone(), snapshot.clone()], policy)
            .expect("v2 state must merge");
        assert_eq!(merged.len(), 3, "{policy}");
        assert_eq!(
            ReuseTraceMemory::import_with(&merged, policy).resident(),
            3,
            "{policy}"
        );
    }
}

#[test]
fn v3_roundtrip_preserves_provenance_on_disk() {
    // Provenance born from real hits, through a real file.
    let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
    rtm.set_source_run(9001);
    rtm.insert(rec(8, 1));
    rtm.insert(rec(16, 2));
    for _ in 0..4 {
        assert!(rtm
            .lookup(8, |l| match l {
                Loc::IntReg(1) => 1,
                Loc::Mem(72) => 1,
                _ => 0,
            })
            .is_some());
    }
    let snapshot = rtm.export();
    assert_eq!(snapshot.total_hits(), 4);

    for name in ["v3.tlrsnap", "v3.json"] {
        let path = temp_path(name);
        save_snapshot(&path, 5, &snapshot).unwrap();
        let (_, loaded) = load_snapshot(&path, Some(5)).unwrap();
        assert_eq!(loaded, snapshot, "{name}: provenance lost");
        assert_eq!(loaded.total_hits(), 4, "{name}");
        assert!(
            loaded.meta.iter().all(|m| m.source_run == 9001),
            "{name}: source run lost"
        );
    }
}

#[test]
fn v1_and_future_versions_rejected_with_named_error() {
    for version in [1u16, FORMAT_VERSION + 1] {
        let bytes = encode_snapshot_file(version, 1, &[encode_record(&rec(8, 1))]);
        let path = temp_path(&format!("v{version}.tlrsnap"));
        std::fs::write(&path, &bytes).unwrap();
        match load_snapshot(&path, None) {
            Err(PersistError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, version);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("v{version}: expected UnsupportedVersion, got {other:?}"),
        }
    }
}

// ---- corrupt provenance ---------------------------------------------------

#[test]
fn v3_frame_without_provenance_rejected() {
    // Header says v3, but the frames are v2-shaped (record only): the
    // reader must name the missing provenance, not misparse I/O pairs.
    let frames: Vec<Vec<u8>> = [rec(8, 1), rec(16, 2)].iter().map(encode_record).collect();
    let bytes = encode_snapshot_file(3, 1, &frames);
    let path = temp_path("v3-no-meta.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("provenance"), "unhelpful error: {msg}")
        }
        other => panic!("expected Corrupt(provenance), got {other:?}"),
    }
}

#[test]
fn v3_frame_with_truncated_provenance_rejected() {
    let mut frame = encode_record(&rec(8, 1));
    // 16 of the 24 provenance bytes: parseable as neither v2 nor v3.
    frame.extend_from_slice(&[0u8; 16]);
    let bytes = encode_snapshot_file(3, 1, &[frame]);
    let path = temp_path("v3-short-meta.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("provenance"), "unhelpful error: {msg}")
        }
        other => panic!("expected Corrupt(provenance), got {other:?}"),
    }
}

#[test]
fn v3_frame_with_stray_bytes_after_provenance_rejected() {
    let mut frame = encode_record(&rec(8, 1));
    frame.extend_from_slice(&[0u8; 24]); // valid zero provenance
    frame.extend_from_slice(&[0xab; 5]); // trailing garbage
    let bytes = encode_snapshot_file(3, 1, &[frame]);
    let path = temp_path("v3-stray.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("stray bytes"), "unhelpful error: {msg}")
        }
        other => panic!("expected Corrupt(stray bytes), got {other:?}"),
    }
}

// ---- class mixes (v4) -----------------------------------------------------

/// A v3-shaped frame: record followed by zeroed provenance, no mix.
fn encode_v3_frame(rec: &TraceRecord) -> Vec<u8> {
    let mut frame = encode_record(rec);
    frame.extend_from_slice(&[0u8; 24]);
    frame
}

#[test]
fn v3_snapshot_loads_as_empty_mix() {
    let records = [rec(8, 1), rec(16, 2)];
    let frames: Vec<Vec<u8>> = records.iter().map(encode_v3_frame).collect();
    let bytes = encode_snapshot_file(3, 42, &frames);
    let path = temp_path("v3-no-mix.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    let (fp, snapshot) = load_snapshot(&path, Some(42)).expect("v3 snapshot must still load");
    assert_eq!(fp, 42);
    assert_eq!(snapshot.traces, records.to_vec());
    assert!(
        snapshot.traces.iter().all(|t| t.mix.is_empty()),
        "v3 snapshots carry no class mix; loading must leave it empty"
    );
}

#[test]
fn v4_roundtrip_preserves_mix_on_disk() {
    let mut counts = [0u32; tlr_isa::OpClass::COUNT];
    counts[tlr_isa::OpClass::IntAlu.index()] = 2;
    counts[tlr_isa::OpClass::Load.index()] = 1;
    let mix = tlr_isa::ClassMix::from_counts(counts);
    let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
    rtm.insert(TraceRecord { mix, ..rec(8, 1) });
    rtm.insert(rec(16, 2));
    let snapshot = rtm.export();

    for name in ["v4.tlrsnap", "v4.json"] {
        let path = temp_path(name);
        save_snapshot(&path, 5, &snapshot).unwrap();
        let (_, loaded) = load_snapshot(&path, Some(5)).unwrap();
        assert_eq!(loaded, snapshot, "{name}");
        // Trace identity ignores the mix, so check it explicitly.
        let by_pc = |s: &RtmSnapshot, pc| s.traces.iter().find(|t| t.start_pc == pc).unwrap().mix;
        assert_eq!(by_pc(&loaded, 8), mix, "{name}: class mix lost");
        assert!(by_pc(&loaded, 16).is_empty(), "{name}");
    }
}

#[test]
fn v4_frame_without_mix_rejected() {
    // Header says v4, frames are v3-shaped: the reader must name the
    // missing mix rather than misparse the next frame's length prefix.
    let bytes = encode_snapshot_file(4, 1, &[encode_v3_frame(&rec(8, 1))]);
    let path = temp_path("v4-no-mix.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("class mix"), "unhelpful error: {msg}")
        }
        other => panic!("expected Corrupt(class mix), got {other:?}"),
    }
}

#[test]
fn v4_frame_with_truncated_mix_rejected() {
    let mut frame = encode_v3_frame(&rec(8, 1));
    frame.push(tlr_isa::OpClass::COUNT as u8);
    put_u32(&mut frame, 3); // one lane of eleven
    let bytes = encode_snapshot_file(4, 1, &[frame]);
    let path = temp_path("v4-short-mix.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("class mix"), "unhelpful error: {msg}")
        }
        other => panic!("expected Corrupt(class mix), got {other:?}"),
    }
}

#[test]
fn v4_frame_with_wrong_class_count_rejected() {
    // A file written by a build with a different ISA class list must be
    // refused, not reinterpreted lane-by-lane.
    let mut frame = encode_v3_frame(&rec(8, 1));
    frame.push(7);
    for _ in 0..7 {
        put_u32(&mut frame, 0);
    }
    let bytes = encode_snapshot_file(4, 1, &[frame]);
    let path = temp_path("v4-wrong-lanes.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(
                msg.contains("instruction classes"),
                "unhelpful error: {msg}"
            )
        }
        other => panic!("expected Corrupt(instruction classes), got {other:?}"),
    }
}

#[test]
fn json_corrupt_provenance_rejected() {
    let snapshot = {
        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(8, 1));
        rtm.export()
    };
    let path = temp_path("meta-fuzz.json");
    save_snapshot(&path, 3, &snapshot).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();
    assert!(good.contains("\"meta\""), "JSON dump lost its meta field");

    // Each mutation corrupts only the provenance object.
    for (tag, find, replace) in [
        ("type", "\"hits\": 0", "\"hits\": \"lots\""),
        ("missing-key", "\"hits\"", "\"hitz\""),
        (
            "shape",
            "{\n        \"hits\": 0,",
            "[\n        {\"hits\": 0,",
        ),
    ] {
        assert!(good.contains(find), "{tag}: fixture drifted ({find:?})");
        let bad = good.replacen(find, replace, 1);
        std::fs::write(&path, &bad).unwrap();
        assert!(
            load_snapshot(&path, None).is_err(),
            "{tag}: corrupt provenance accepted"
        );
    }

    // Removing the whole meta object is *legal* — that is exactly what
    // a pre-v3 JSON dump looks like — and loads as zero provenance.
    // In the sorted pretty layout "meta" is a mid-object field: strip
    // from `"meta": {` through its closing `},` inclusive.
    let start = good.find("\"meta\"").expect("meta field present");
    let end = start + good[start..].find('}').expect("meta closes") + 1;
    let tail = good[end..].strip_prefix(',').expect("meta is mid-object");
    let stripped = format!("{}{}", &good[..start].trim_end(), tail.trim_start());
    std::fs::write(&path, &stripped).unwrap();
    let (_, loaded) = load_snapshot(&path, None).expect("meta-less JSON must load");
    assert_eq!(loaded.total_hits(), 0);
    assert_eq!(loaded.traces, snapshot.traces);
}
