//! Snapshot-merge properties: determinism, capacity, the unanimity
//! guarantee, and warm-start dominance of pooled snapshots on looping
//! workloads.
//!
//! Input snapshots are produced the only way real ones can be — by
//! inserting records into an RTM and exporting — so every generated
//! snapshot satisfies the exporter's invariants (no duplicate records,
//! per-group and per-set occupancy within geometry).

use proptest::prelude::*;
use tlr_core::{
    EngineConfig, Heuristic, MergeError, ReplacementPolicy, ReuseTraceMemory, RtmConfig,
    RtmSnapshot, SetAssocGeometry, TraceRecord, TraceReuseEngine,
};
use tlr_isa::Loc;

/// A deliberately tiny geometry so capacity contention is the common
/// case, not the corner case: 2 sets x 2 ways x 2 per PC = 8 traces.
const TINY: RtmConfig = RtmConfig {
    geometry: SetAssocGeometry {
        sets: 2,
        ways: 2,
        per_pc: 2,
    },
};

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    // Few PCs and few values: collisions (same PC, same/different
    // live-ins) happen constantly under the tiny geometry.
    (0u32..6, 1u32..5, 0u64..4, 0u64..4).prop_map(|(start_pc, len, in_val, out_val)| TraceRecord {
        start_pc,
        next_pc: start_pc + len,
        len,
        ins: vec![(Loc::IntReg(1), in_val)].into_boxed_slice(),
        outs: vec![(Loc::IntReg(2), out_val)].into_boxed_slice(),
        mix: Default::default(),
    })
}

fn snapshot_strategy() -> impl Strategy<Value = RtmSnapshot> {
    proptest::collection::vec(record_strategy(), 0..24).prop_map(|records| {
        let mut rtm = ReuseTraceMemory::new(TINY);
        for record in records {
            rtm.insert(record);
        }
        rtm.export()
    })
}

/// Like [`snapshot_strategy`], but each record is also *used* a few
/// times after insertion, so exports carry non-trivial provenance for
/// the frequency-weighted policies to rank by.
fn warm_snapshot_strategy() -> impl Strategy<Value = RtmSnapshot> {
    proptest::collection::vec((record_strategy(), 0u8..4), 0..24).prop_map(|records| {
        let mut rtm = ReuseTraceMemory::new(TINY);
        for (record, hits) in records {
            let (pc, in_val) = (record.start_pc, record.ins[0].1);
            rtm.insert(record);
            for _ in 0..hits {
                rtm.lookup(pc, |l| if l == Loc::IntReg(1) { in_val } else { 0 });
            }
        }
        rtm.export()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Merging is a pure function of its inputs.
    #[test]
    fn merge_is_deterministic(a in snapshot_strategy(), b in snapshot_strategy()) {
        let first = RtmSnapshot::merge(&[a.clone(), b.clone()]).unwrap();
        let second = RtmSnapshot::merge(&[a, b]).unwrap();
        prop_assert_eq!(first, second);
    }

    /// The merge respects geometry: never more traces than capacity,
    /// and the result is a fixed point of import/export (it *is* a
    /// valid resident configuration, not just a trace list).
    #[test]
    fn merge_respects_capacity(a in snapshot_strategy(), b in snapshot_strategy()) {
        let merged = RtmSnapshot::merge(&[a, b]).unwrap();
        prop_assert!(merged.len() as u64 <= TINY.capacity());
        let canonical = ReuseTraceMemory::import(&merged).export();
        prop_assert_eq!(canonical, merged);
    }

    /// A trace both inputs kept survives any capacity contention.
    #[test]
    fn merge_never_loses_a_unanimous_trace(a in snapshot_strategy(), b in snapshot_strategy()) {
        let merged = RtmSnapshot::merge(&[a.clone(), b.clone()]).unwrap();
        for trace in a.traces.iter() {
            if b.traces.contains(trace) {
                prop_assert!(
                    merged.traces.contains(trace),
                    "merge dropped a trace both inputs agree on: {:?}",
                    trace
                );
            }
        }
    }

    /// Merging a snapshot with itself is the identity (modulo LRU
    /// canonicalization, which exports already apply).
    #[test]
    fn merge_with_self_is_identity(a in snapshot_strategy()) {
        let merged = RtmSnapshot::merge(&[a.clone(), a.clone()]).unwrap();
        prop_assert_eq!(merged, a);
    }

    /// The acceptance property of the policy refactor: under **every**
    /// replacement policy — including the frequency-weighted ones,
    /// whose victim ranking actively disfavours cold traces — a merge
    /// is deterministic, respects capacity, is a fixed point of
    /// same-policy import/export, and never drops a trace all inputs
    /// kept.
    #[test]
    fn policy_merges_uphold_unanimity_and_capacity(
        a in warm_snapshot_strategy(),
        b in warm_snapshot_strategy(),
    ) {
        for policy in ReplacementPolicy::ALL {
            let merged = RtmSnapshot::merge_with(&[a.clone(), b.clone()], policy).unwrap();
            let again = RtmSnapshot::merge_with(&[a.clone(), b.clone()], policy).unwrap();
            prop_assert_eq!(&merged, &again, "{} merge not deterministic", policy);
            prop_assert!(merged.len() as u64 <= TINY.capacity());
            let canonical = ReuseTraceMemory::import_with(&merged, policy).export();
            prop_assert_eq!(&canonical, &merged, "{} merge not a fixed point", policy);
            for trace in a.traces.iter() {
                if b.traces.contains(trace) {
                    prop_assert!(
                        merged.traces.contains(trace),
                        "{} merge dropped a unanimous trace: {:?}",
                        policy,
                        trace
                    );
                }
            }
        }
    }
}

#[test]
fn merge_rejects_mismatched_geometry() {
    let tiny = ReuseTraceMemory::new(TINY).export();
    let big = ReuseTraceMemory::new(RtmConfig::RTM_512).export();
    assert!(matches!(
        RtmSnapshot::merge(&[tiny, big]),
        Err(MergeError::GeometryMismatch { .. })
    ));
    assert_eq!(RtmSnapshot::merge(&[]), Err(MergeError::Empty));
}

/// Cross-geometry warm start: `new_warm` adopts the snapshot's
/// geometry regardless of the configured one, so pooled state from a
/// bigger RTM serves a run configured smaller, and vice versa.
#[test]
fn warm_start_adopts_snapshot_geometry() {
    let program = tlr_workloads::by_name("compress")
        .unwrap()
        .program_with(3, 8);
    for (collect_rtm, serve_rtm) in [
        (RtmConfig::RTM_32K, RtmConfig::RTM_512),
        (RtmConfig::RTM_512, RtmConfig::RTM_32K),
    ] {
        let mut cold = TraceReuseEngine::new(
            &program,
            EngineConfig::paper(collect_rtm, Heuristic::FixedExp(4)),
        );
        cold.run(100_000).unwrap();
        let snapshot = cold.export_rtm().unwrap();
        assert_eq!(snapshot.config, collect_rtm);

        let warm = TraceReuseEngine::new_warm(
            &program,
            EngineConfig::paper(serve_rtm, Heuristic::FixedExp(4)),
            &snapshot,
        );
        assert_eq!(
            warm.rtm().resident(),
            snapshot.len() as u64,
            "warm RTM did not adopt the snapshot's geometry"
        );
    }
}

/// On looping workloads whose union fits the geometry, a merged
/// snapshot warm-starts at least as well as either input alone.
#[test]
fn merged_warm_start_dominates_inputs_on_looping_workloads() {
    for name in ["ijpeg", "go"] {
        let program = tlr_workloads::by_name(name)
            .unwrap()
            .program_with(20260611, 10);
        let rtm = RtmConfig::RTM_32K;
        let snap = |heuristic| {
            let mut engine = TraceReuseEngine::new(&program, EngineConfig::paper(rtm, heuristic));
            engine.run(200_000).unwrap();
            engine.export_rtm().unwrap()
        };
        let a = snap(Heuristic::FixedExp(2));
        let b = snap(Heuristic::FixedExp(6));
        let merged = RtmSnapshot::merge(&[a.clone(), b.clone()]).unwrap();
        let warm = |snapshot: &RtmSnapshot| {
            TraceReuseEngine::new_warm(
                &program,
                EngineConfig::paper(rtm, Heuristic::FixedExp(4)),
                snapshot,
            )
            .run(200_000)
            .unwrap()
            .pct_reused()
        };
        let (wa, wb, wm) = (warm(&a), warm(&b), warm(&merged));
        assert!(
            wm >= wa.max(wb) - 1e-9,
            "{name}: merged-warm {wm:.3}% < best solo {:.3}%",
            wa.max(wb)
        );
    }
}
