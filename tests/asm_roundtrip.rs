//! Assembler round-trip property: `assemble(disassemble(p)) == p` for
//! arbitrary well-formed programs, plus determinism of the VM over
//! random (structurally safe) programs.

use proptest::prelude::*;
use tlr_asm::{assemble, Program};
use tlr_isa::{BranchCond, CollectSink, FReg, FpOp, FpUnOp, Instr, IntOp, Operand, Reg};
use tlr_vm::Vm;

/// Strategy for a random instruction with control-flow targets bounded
/// by `len` (so programs are always well-formed).
fn instr_strategy(len: u32) -> impl Strategy<Value = Instr> {
    let reg = (0u8..32).prop_map(Reg::new);
    let freg = (0u8..32).prop_map(FReg::new);
    let operand = prop_oneof![
        (0u8..32).prop_map(|r| Operand::Reg(Reg::new(r))),
        (-1000i32..1000).prop_map(Operand::Imm),
    ];
    let int_op = prop_oneof![
        Just(IntOp::Add),
        Just(IntOp::Sub),
        Just(IntOp::Mul),
        Just(IntOp::And),
        Just(IntOp::Or),
        Just(IntOp::Xor),
        Just(IntOp::Sll),
        Just(IntOp::Srl),
        Just(IntOp::Sra),
        Just(IntOp::CmpEq),
        Just(IntOp::CmpLt),
        Just(IntOp::CmpLe),
        Just(IntOp::CmpUlt),
    ];
    let fp_op = prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div)
    ];
    let fp_un = prop_oneof![
        Just(FpUnOp::Sqrt),
        Just(FpUnOp::Neg),
        Just(FpUnOp::Abs),
        Just(FpUnOp::Mov)
    ];
    let cond = prop_oneof![
        Just(BranchCond::Eqz),
        Just(BranchCond::Nez),
        Just(BranchCond::Ltz),
        Just(BranchCond::Lez),
        Just(BranchCond::Gtz),
        Just(BranchCond::Gez),
    ];
    prop_oneof![
        (int_op, reg.clone(), reg.clone(), operand).prop_map(|(op, rd, ra, rb)| Instr::IntOp {
            op,
            rd,
            ra,
            rb
        }),
        (reg.clone(), any::<i32>()).prop_map(|(rd, imm)| Instr::Li {
            rd,
            imm: imm as i64
        }),
        (fp_op, freg.clone(), freg.clone(), freg.clone())
            .prop_map(|(op, fd, fa, fb)| Instr::FpOp { op, fd, fa, fb }),
        (fp_un, freg.clone(), freg.clone()).prop_map(|(op, fd, fa)| Instr::FpUn { op, fd, fa }),
        (reg.clone(), reg.clone(), 0i32..64).prop_map(|(rd, base, disp)| Instr::LoadInt {
            rd,
            base,
            disp
        }),
        (reg.clone(), reg.clone(), 0i32..64).prop_map(|(rs, base, disp)| Instr::StoreInt {
            rs,
            base,
            disp
        }),
        (freg.clone(), reg.clone(), 0i32..64).prop_map(|(fd, base, disp)| Instr::LoadFp {
            fd,
            base,
            disp
        }),
        (freg.clone(), reg.clone(), 0i32..64).prop_map(|(fs, base, disp)| Instr::StoreFp {
            fs,
            base,
            disp
        }),
        (freg.clone(), reg.clone()).prop_map(|(fd, ra)| Instr::Itof { fd, ra }),
        (reg.clone(), freg).prop_map(|(rd, fa)| Instr::Ftoi { rd, fa }),
        (cond, reg, 0u32..len).prop_map(|(cond, ra, target)| Instr::Branch { cond, ra, target }),
        (0u32..len).prop_map(|target| Instr::Jump { target }),
        Just(Instr::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disassemble → reassemble is the identity on instructions.
    #[test]
    fn roundtrip(instrs in proptest::collection::vec(instr_strategy(32), 1..32)) {
        let mut text = String::new();
        for i in &instrs {
            text.push_str(&i.to_string());
            text.push('\n');
        }
        // Pad so that every generated branch target (0..32) is in range.
        while text.lines().count() < 32 {
            text.push_str("nop\n");
        }
        text.push_str("halt\n");
        let prog = assemble(&text).expect("disassembly must reassemble");
        prop_assert_eq!(&prog.instrs[..instrs.len()], instrs.as_slice());
    }

    /// The VM is deterministic over arbitrary programs: two runs yield
    /// identical streams (guarding against hidden state in the VM).
    #[test]
    fn vm_determinism(instrs in proptest::collection::vec(instr_strategy(16), 1..16)) {
        let program = Program {
            instrs: {
                let mut v = instrs;
                v.push(Instr::Halt);
                v
            },
            ..Default::default()
        };
        let run = || {
            let mut vm = Vm::new(&program);
            let mut sink = CollectSink::default();
            // Random programs may loop forever or jump off the rails;
            // both budget exhaustion and VmError are acceptable, they
            // just must be *identical* across runs.
            let outcome = vm.run(2_000, &mut sink);
            (format!("{outcome:?}"), sink.records)
        };
        let (o1, s1) = run();
        let (o2, s2) = run();
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(s1, s2);
    }
}

/// Whole-workload disassembly reassembles to identical code.
#[test]
fn workload_disassembly_roundtrips() {
    for w in tlr_workloads::all() {
        let prog = w.program_with(3, 2);
        let mut text = prog
            .instrs
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        text.push('\n');
        let again = assemble(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(again.instrs, prog.instrs, "{}", w.name);
    }
}
