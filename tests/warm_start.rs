//! Warm-start integration: an engine seeded from an exported RTM
//! snapshot never reuses less than the cold run on the same looping
//! workload, and the record → replay loop is deterministic end to end.

use std::path::PathBuf;
use trace_reuse::persist::{
    load_snapshot, program_fingerprint, replay, save_snapshot, TraceReader, TraceWriter,
};
use trace_reuse::prelude::*;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlr-warm-start-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn warm_start_beats_or_matches_cold_on_looping_workloads() {
    // Looping kernels with stable working sets — the warm-start sweet
    // spot the paper's cold engine cannot exploit.
    for name in ["compress", "ijpeg", "tomcatv"] {
        let program = tlr_workloads::by_name(name).unwrap().program(7);
        let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));

        let mut cold_engine = TraceReuseEngine::new(&program, config);
        let cold = cold_engine.run(60_000).unwrap();
        let snapshot = cold_engine.export_rtm().unwrap();
        assert!(!snapshot.is_empty(), "{name}: cold run collected nothing");

        // Through disk, exactly as `tlrsim snapshot` + `run --warm-rtm` do.
        let path = temp_path(&format!("{name}.tlrsnap"));
        let fingerprint = program_fingerprint(&program);
        save_snapshot(&path, fingerprint, &snapshot).unwrap();
        let (_, loaded) = load_snapshot(&path, Some(fingerprint)).unwrap();
        assert_eq!(loaded, snapshot);

        let warm = TraceReuseEngine::new_warm(&program, config, &loaded)
            .run(60_000)
            .unwrap();
        assert!(
            warm.pct_reused() >= cold.pct_reused() - 1e-9,
            "{name}: warm {} < cold {}",
            warm.pct_reused(),
            cold.pct_reused()
        );
    }
}

#[test]
fn record_then_replay_is_deterministic() {
    let program = tlr_workloads::by_name("li").unwrap().program_with(3, 4);
    let fingerprint = program_fingerprint(&program);
    let path = temp_path("li.tlrtrace");

    let mut sink = TraceWriter::create(&path, fingerprint).unwrap();
    let mut vm = Vm::new(&program);
    let outcome = vm.run(50_000, &mut sink).unwrap();
    sink.set_halted(matches!(outcome, RunOutcome::Halted { .. }));
    let recorded = sink.close().unwrap();
    assert_eq!(recorded, outcome.executed());

    let mut reader = TraceReader::open(&path, Some(fingerprint)).unwrap();
    let (stats, replayed_vm) = replay(&program, &mut reader).unwrap();
    // Identical final stats: same instruction count, same termination,
    // same architectural state.
    assert_eq!(stats.replayed, recorded);
    assert_eq!(stats.halted, matches!(outcome, RunOutcome::Halted { .. }));
    for r in 0..32 {
        assert_eq!(
            replayed_vm.peek_loc(Loc::IntReg(r)),
            vm.peek_loc(Loc::IntReg(r)),
            "r{r} differs after replay"
        );
    }
}

#[test]
fn replay_rejects_recording_of_different_program() {
    let a = tlr_workloads::by_name("go").unwrap().program(1);
    let b = tlr_workloads::by_name("go").unwrap().program(2);
    let path = temp_path("go.tlrtrace");

    let mut sink = TraceWriter::create(&path, program_fingerprint(&a)).unwrap();
    Vm::new(&a).run(5_000, &mut sink).unwrap();
    sink.close().unwrap();

    // The fingerprint check rejects the file outright…
    assert!(TraceReader::open(&path, Some(program_fingerprint(&b))).is_err());

    // …and even with the check bypassed, divergence detection fires.
    let mut reader = TraceReader::open(&path, None).unwrap();
    match replay(&b, &mut reader) {
        Err(PersistError::Divergence { .. }) => {}
        Err(other) => panic!("expected divergence, got {other}"),
        Ok(_) => panic!("replay of the wrong program succeeded"),
    }
}
