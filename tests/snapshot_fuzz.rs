//! Corrupt-snapshot fuzzing through the public load paths: hostile or
//! damaged snapshot files — oversized geometry, zero-length traces,
//! cap-busting I/O lists, random bit flips — must be rejected with a
//! descriptive `PersistError`, never imported (and never allowed to
//! trigger a huge allocation), on both the binary and JSON formats.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use tlr_core::{RtmConfig, RtmSnapshot, SetAssocGeometry, TraceRecord};
use tlr_isa::Loc;
use tlr_persist::snapshot::{
    write_snapshot, MAX_GEOMETRY_CAPACITY, MAX_GEOMETRY_PER_PC, MAX_GEOMETRY_SETS,
    MAX_GEOMETRY_WAYS, SNAPSHOT_IO_CAPS,
};
use tlr_persist::{load_snapshot, save_snapshot, PersistError};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlr-snapshot-fuzz");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn well_formed_snapshot() -> RtmSnapshot {
    let mut snapshot = RtmSnapshot::from_traces(
        RtmConfig::RTM_512,
        (0..8)
            .map(|i| TraceRecord {
                start_pc: i * 3,
                next_pc: i * 3 + 4,
                len: 4,
                ins: vec![(Loc::IntReg(1), i as u64)].into_boxed_slice(),
                outs: vec![(Loc::IntReg(2), i as u64 + 1)].into_boxed_slice(),
                mix: Default::default(),
            })
            .collect(),
    );
    // Non-zero provenance so the bit-flip and truncation properties
    // cover the v3 provenance bytes too.
    for (i, m) in snapshot.meta.iter_mut().enumerate() {
        m.hits = i as u64 + 1;
        m.last_use = 100 + i as u64;
        m.source_run = 0x5eed;
    }
    snapshot
}

/// Writer for hostile content: `write_snapshot`/`save_snapshot`
/// serialize whatever struct they are given without validation, which
/// is exactly what a hostile producer would do.
fn save_both_formats(name: &str, snapshot: &RtmSnapshot) -> (PathBuf, PathBuf) {
    let bin = temp_path(&format!("{name}.tlrsnap"));
    let json = temp_path(&format!("{name}.json"));
    save_snapshot(&bin, 1, snapshot).unwrap();
    save_snapshot(&json, 1, snapshot).unwrap();
    (bin, json)
}

fn expect_corrupt(path: &Path, needle: &str) {
    match load_snapshot(path, None) {
        Err(PersistError::Corrupt(msg)) => assert!(
            msg.contains(needle),
            "{}: message {msg:?} does not mention {needle:?}",
            path.display()
        ),
        other => panic!(
            "{}: expected Corrupt({needle}), got {:?}",
            path.display(),
            other.map(|(fp, s)| (fp, s.len()))
        ),
    }
}

#[test]
fn oversized_geometry_rejected_without_allocation() {
    // All power-of-two, all beyond the bounds: each would have passed
    // the old `is_power_of_two` check and provoked a giant allocation.
    for (sets, ways, per_pc, tag) in [
        (1u32 << 30, 8u32, 16u32, "sets"),
        (2048, MAX_GEOMETRY_WAYS * 2, 16, "ways"),
        (2048, 8, MAX_GEOMETRY_PER_PC * 2, "per_pc"),
        (
            MAX_GEOMETRY_SETS,
            MAX_GEOMETRY_WAYS,
            MAX_GEOMETRY_PER_PC,
            "capacity",
        ),
    ] {
        let mut snapshot = well_formed_snapshot();
        snapshot.config.geometry = SetAssocGeometry { sets, ways, per_pc };
        if tag == "capacity" {
            assert!(
                snapshot.config.geometry.capacity() > MAX_GEOMETRY_CAPACITY,
                "test geometry must bust the total capacity bound"
            );
        }
        let (bin, json) = save_both_formats(&format!("geom-{tag}"), &snapshot);
        expect_corrupt(&bin, "oversized");
        expect_corrupt(&json, "oversized");
    }
}

#[test]
fn zero_length_trace_rejected() {
    let mut snapshot = well_formed_snapshot();
    snapshot.traces[5].len = 0;
    let (bin, json) = save_both_formats("zero-len", &snapshot);
    expect_corrupt(&bin, "zero instructions");
    expect_corrupt(&json, "zero instructions");
}

#[test]
fn cap_busting_io_lists_rejected() {
    // One past each bound, on each side.
    let reg_busting: Box<[(Loc, u64)]> = (0..=SNAPSHOT_IO_CAPS.reg_in as u64)
        .map(|i| (Loc::IntReg((i % 256) as u8), i))
        .collect();
    let mem_busting: Box<[(Loc, u64)]> = (0..=SNAPSHOT_IO_CAPS.mem_in as u64)
        .map(|i| (Loc::Mem(i * 8), i))
        .collect();
    for (field, list, tag) in [
        ("ins", reg_busting.clone(), "reg-ins"),
        ("ins", mem_busting.clone(), "mem-ins"),
        ("outs", reg_busting, "reg-outs"),
        ("outs", mem_busting, "mem-outs"),
    ] {
        let mut snapshot = well_formed_snapshot();
        if field == "ins" {
            snapshot.traces[0].ins = list;
        } else {
            snapshot.traces[0].outs = list;
        }
        let (bin, json) = save_both_formats(&format!("caps-{tag}"), &snapshot);
        expect_corrupt(&bin, "load caps");
        expect_corrupt(&json, "load caps");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-byte corruption anywhere in a binary snapshot is
    /// never silently accepted as different content: either the load
    /// fails, or the corruption missed everything the codec reads
    /// (e.g. padding-free formats make this rare) and the snapshot
    /// round-trips identically.
    #[test]
    fn binary_bit_flips_never_alter_loaded_content(offset in any::<u64>(), bit in 0u32..8) {
        let snapshot = well_formed_snapshot();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, 99, &snapshot).unwrap();
        let offset = (offset % bytes.len() as u64) as usize;
        bytes[offset] ^= 1 << bit;

        let path = temp_path("bitflip.tlrsnap");
        std::fs::write(&path, &bytes).unwrap();
        if let Ok((fingerprint, loaded)) = load_snapshot(&path, None) {
            // Only the header fingerprint may legitimately differ and
            // still load; the payload is checksummed.
            prop_assert_eq!(loaded, snapshot);
            prop_assert_ne!(fingerprint, 99);
        }
    }

    /// Truncating a binary snapshot anywhere is always detected.
    #[test]
    fn binary_truncation_always_detected(cut in 0u64..u64::MAX) {
        let snapshot = well_formed_snapshot();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, 7, &snapshot).unwrap();
        let cut = (cut % (bytes.len() as u64 - 1) + 1) as usize; // 1..len
        bytes.truncate(bytes.len() - cut);

        let path = temp_path("truncated.tlrsnap");
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(load_snapshot(&path, None).is_err(), "truncated snapshot accepted");
    }
}
