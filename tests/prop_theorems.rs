//! Property tests for the paper's theorems (§4.4 and the appendix).
//!
//! Theorem 1/3: a reusable trace implies every member (sub-trace) is
//! reusable. The checker in `tlr-core` runs the real signature and
//! live-set machinery, so these properties double as end-to-end tests of
//! that machinery over adversarial random streams.

use proptest::prelude::*;
use tlr_core::theorems::{check_theorem1, check_theorem3, theorem2_counterexample};
use tlr_workloads::synthetic::{generate, SyntheticConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 holds on any synthetic stream, for any trace length.
    #[test]
    fn theorem1_over_random_streams(
        seed in any::<u64>(),
        redundancy in 0.0f64..1.0,
        trace_len in 1usize..12,
        static_instrs in 4u32..64,
    ) {
        let cfg = SyntheticConfig {
            seed,
            redundancy,
            static_instrs,
            ..Default::default()
        };
        let stream = generate(&cfg, 4_000);
        let res = check_theorem1(&stream, trace_len);
        prop_assert_eq!(res.violations, 0, "theorem 1 violated: {:?}", res);
    }

    /// Theorem 3 (the generalization to sub-traces) holds likewise.
    #[test]
    fn theorem3_over_random_streams(
        seed in any::<u64>(),
        redundancy in 0.3f64..1.0,
        sub_len in 1usize..5,
        k in 1usize..5,
    ) {
        let cfg = SyntheticConfig {
            seed,
            redundancy,
            ..Default::default()
        };
        let stream = generate(&cfg, 4_000);
        let res = check_theorem3(&stream, sub_len, k);
        prop_assert_eq!(res.violations, 0, "theorem 3 violated: {:?}", res);
    }

    /// High-redundancy streams do contain reusable traces — the checker
    /// is not vacuously passing.
    #[test]
    fn checker_is_not_vacuous(seed in any::<u64>()) {
        let cfg = SyntheticConfig {
            seed,
            redundancy: 0.97,
            static_instrs: 8,
            tuples_per_pc: 2,
            ..Default::default()
        };
        let stream = generate(&cfg, 6_000);
        let res = check_theorem1(&stream, 2);
        prop_assert!(res.reusable_traces > 0, "no reusable traces found: {res:?}");
    }
}

/// Theorem 2: the converse of theorem 1 fails, by the appendix's own
/// construction.
#[test]
fn theorem2_counterexample_is_valid() {
    let (stream, trace_len) = theorem2_counterexample();
    let res = check_theorem1(&stream, trace_len);
    // Three instances of the trace; none reusable as a whole...
    assert_eq!(res.traces, 3);
    assert_eq!(res.reusable_traces, 0);
    // ...yet both members of the final instance are individually
    // reusable (verified inside tlr-core's unit tests as well; here we
    // recheck through the public API).
    let mut table = tlr_core::InstrReuseTable::new();
    let flags: Vec<bool> = stream.iter().map(|d| table.probe_insert(d)).collect();
    assert!(flags[stream.len() - 2] && flags[stream.len() - 1]);
}

/// Theorem 1 on real workload streams (not just synthetic ones).
#[test]
fn theorem1_on_real_workloads() {
    for name in ["compress", "hydro2d", "perl"] {
        let w = tlr_workloads::by_name(name).unwrap();
        let prog = w.program_with(3, 3);
        let mut vm = tlr_vm::Vm::new(&prog);
        let mut sink = tlr_isa::CollectSink::default();
        vm.run(20_000, &mut sink).unwrap();
        for trace_len in [1usize, 3, 8] {
            let res = check_theorem1(&sink.records, trace_len);
            assert_eq!(res.violations, 0, "{name} trace_len={trace_len}: {res:?}");
        }
    }
}
