//! Cross-check harness for the predecoded throughput engine: the fast
//! substrate (predecode tables, straight-line trace blocks, batched
//! execution) must be *invisible* — every workload, every replacement
//! policy, and arbitrary valid programs must end in exactly the state
//! the reference engine and the observing interpreter produce, with
//! identical instruction accounting and identical reuse decisions.

use proptest::prelude::*;
use tlr_core::{
    EngineConfig, Heuristic, ReplacementPolicy, RtmConfig, ThroughputEngine, TraceReuseEngine,
};
use tlr_isa::NullSink;
use tlr_vm::{ExecMode, Vm};
use trace_reuse::asm::assemble;

const BUDGET: u64 = 60_000;

#[test]
fn fast_engine_matches_reference_on_every_workload() {
    let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
    for w in tlr_workloads::all() {
        let prog = w.program(13);

        let mut reference = TraceReuseEngine::new(&prog, config);
        let ref_stats = reference
            .run(BUDGET)
            .unwrap_or_else(|e| panic!("{}: reference: {e}", w.name));

        for mode in [ExecMode::Fast, ExecMode::Observed] {
            let mut engine = ThroughputEngine::new(&prog, config).with_mode(mode);
            let stats = engine
                .run(BUDGET)
                .unwrap_or_else(|e| panic!("{}/{mode:?}: throughput: {e}", w.name));
            assert_eq!(stats, ref_stats, "{}/{mode:?}: stats diverged", w.name);
            assert_eq!(
                engine.vm().state_digest(),
                reference.vm().state_digest(),
                "{}/{mode:?}: architectural state diverged",
                w.name
            );
        }
    }
}

#[test]
fn fast_engine_matches_reference_across_policies() {
    // Policies change *which* traces survive eviction, so each policy is
    // its own decision stream — the fast substrate must reproduce all of
    // them. Small RTM to force evictions.
    for w in tlr_workloads::all() {
        let prog = w.program(29);
        for policy in ReplacementPolicy::ALL {
            let config =
                EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(4)).with_policy(policy);
            let mut reference = TraceReuseEngine::new(&prog, config);
            let ref_stats = reference
                .run(BUDGET)
                .unwrap_or_else(|e| panic!("{} [{policy}]: reference: {e}", w.name));
            let mut engine = ThroughputEngine::new(&prog, config);
            let stats = engine
                .run(BUDGET)
                .unwrap_or_else(|e| panic!("{} [{policy}]: throughput: {e}", w.name));
            assert_eq!(stats, ref_stats, "{} [{policy}]: stats diverged", w.name);
            assert_eq!(
                engine.vm().state_digest(),
                reference.vm().state_digest(),
                "{} [{policy}]: architectural state diverged",
                w.name
            );
        }
    }
}

/// One random but always-valid instruction, rendered as assembly. Every
/// line carries a label so branch targets generated as `imm % (n + 1)`
/// always resolve (index `n` is the trailing `halt`).
fn render_instr(
    i: usize,
    n: usize,
    (kind, a, b, c, disp, imm): (u8, u8, u8, u8, u64, u16),
) -> String {
    let target = (imm as usize) % (n + 1);
    let body = match kind {
        0 => format!("addq r{a}, r{b}, r{c}"),
        1 => format!("subq r{a}, r{b}, r{c}"),
        2 => format!("mulq r{a}, r{b}, r{c}"),
        3 => format!("and r{a}, r{b}, r{c}"),
        4 => format!("xor r{a}, r{b}, r{c}"),
        5 => format!("addq r{a}, r{b}, {imm}"),
        6 => format!("li r{a}, {imm}"),
        7 => format!("ldq r{a}, {disp}(r{b})"),
        8 => format!("stq r{a}, {disp}(r{b})"),
        9 => format!("beqz r{a}, L{target}"),
        10 => format!("bnez r{a}, L{target}"),
        11 => format!("addt f{a}, f{b}, f{c}"),
        12 => format!("itof f{a}, r{b}"),
        13 => format!("cmplt r{a}, r{b}, r{c}"),
        _ => "nop".to_string(),
    };
    format!("L{i}: {body}\n")
}

fn arb_program() -> impl Strategy<Value = String> {
    let instr = (0u8..15, 1u8..10, 1u8..10, 1u8..10, 0u64..64, any::<u16>());
    proptest::collection::vec(instr, 8..60).prop_map(|instrs| {
        let n = instrs.len();
        let mut text = String::new();
        for (i, spec) in instrs.into_iter().enumerate() {
            text.push_str(&render_instr(i, n, spec));
        }
        text.push_str(&format!("L{n}: halt\n"));
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Predecoded execution is the interpreter: same final state, same
    /// instruction count, on arbitrary valid programs (including ones
    /// that loop forever and exhaust the budget).
    #[test]
    fn predecoded_vm_matches_observing_vm(source in arb_program()) {
        let prog = assemble(&source).expect("generated programs are valid");
        let mut observed = Vm::new(&prog);
        observed.run(5_000, &mut NullSink).expect("observing run");
        let mut fast = Vm::new(&prog);
        fast.run_fast(5_000).expect("fast run");
        prop_assert_eq!(observed.executed(), fast.executed());
        prop_assert_eq!(observed.state_digest(), fast.state_digest());
    }

    /// The throughput engine is the reference engine, on arbitrary valid
    /// programs under all three replacement policies: same digest, same
    /// executed/skipped counts, same number of reuse decisions.
    #[test]
    fn fast_engine_matches_reference_on_random_programs(source in arb_program()) {
        let prog = assemble(&source).expect("generated programs are valid");
        for policy in ReplacementPolicy::ALL {
            let config = EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(2))
                .with_policy(policy);
            let mut reference = TraceReuseEngine::new(&prog, config);
            let ref_stats = reference.run(5_000).expect("reference run");
            let mut engine = ThroughputEngine::new(&prog, config);
            let stats = engine.run(5_000).expect("throughput run");
            prop_assert_eq!(stats.executed, ref_stats.executed, "{}", policy);
            prop_assert_eq!(stats.skipped, ref_stats.skipped, "{}", policy);
            prop_assert_eq!(stats.reuse_ops, ref_stats.reuse_ops, "{}", policy);
            prop_assert_eq!(
                engine.vm().state_digest(),
                reference.vm().state_digest(),
                "{}",
                policy
            );
        }
    }
}
