//! The engine's cardinal correctness property: **reuse is invisible to
//! architecture**. Running any workload under any RTM configuration and
//! any collection heuristic must leave byte-identical architectural
//! state (all of memory, all registers) and account for exactly the same
//! number of dynamic instructions as a plain run.
//!
//! This is the executable form of the §3.3 argument that applying a
//! matching trace's recorded outputs is equivalent to executing it.

use tlr_core::{EngineConfig, Heuristic, RtmConfig, TraceReuseEngine};
use tlr_isa::{Loc, NullSink};
use tlr_vm::Vm;

/// Full architectural fingerprint: every nonzero memory word + all
/// integer and FP registers.
fn fingerprint(vm: &Vm) -> (Vec<(u64, u64)>, Vec<u64>) {
    let mut words: Vec<(u64, u64)> = vm.memory().iter_words().collect();
    words.sort_unstable();
    let mut regs = Vec::with_capacity(64);
    for r in 0..32 {
        regs.push(vm.peek_loc(Loc::IntReg(r)));
    }
    for r in 0..32 {
        regs.push(vm.peek_loc(Loc::FpReg(r)));
    }
    (words, regs)
}

#[test]
fn every_workload_every_heuristic_preserves_state() {
    let heuristics = [
        Heuristic::IlrNe,
        Heuristic::IlrExp,
        Heuristic::FixedExp(1),
        Heuristic::FixedExp(4),
        Heuristic::FixedExp(8),
    ];
    for w in tlr_workloads::all() {
        let prog = w.program_with(17, 3);
        let mut plain = Vm::new(&prog);
        plain
            .run(10_000_000, &mut NullSink)
            .unwrap_or_else(|e| panic!("{}: plain run failed: {e}", w.name));
        let expect = fingerprint(&plain);
        let expect_instrs = plain.executed();

        for h in heuristics {
            let mut engine =
                TraceReuseEngine::new(&prog, EngineConfig::paper(RtmConfig::RTM_512, h));
            let stats = engine
                .run(20_000_000)
                .unwrap_or_else(|e| panic!("{}/{h:?}: engine failed: {e}", w.name));
            assert!(stats.halted, "{}/{h:?}: did not halt", w.name);
            assert_eq!(
                stats.total(),
                expect_instrs,
                "{}/{h:?}: instruction accounting diverged",
                w.name
            );
            assert_eq!(
                fingerprint(engine.vm()),
                expect,
                "{}/{h:?}: architectural state diverged",
                w.name
            );
        }
    }
}

#[test]
fn larger_rtms_also_preserve_state() {
    // Spot-check the bigger geometries on the two most reuse-heavy
    // workloads.
    for name in ["hydro2d", "ijpeg"] {
        let w = tlr_workloads::by_name(name).unwrap();
        let prog = w.program_with(5, 2);
        let mut plain = Vm::new(&prog);
        plain.run(10_000_000, &mut NullSink).unwrap();
        let expect = fingerprint(&plain);
        for rtm in [RtmConfig::RTM_4K, RtmConfig::RTM_32K] {
            let mut engine =
                TraceReuseEngine::new(&prog, EngineConfig::paper(rtm, Heuristic::FixedExp(6)));
            let stats = engine.run(20_000_000).unwrap();
            assert!(stats.halted);
            assert_eq!(fingerprint(engine.vm()), expect, "{name}/{}", rtm.label());
        }
    }
}

#[test]
fn valid_bit_backend_is_sound() {
    // The valid-bit reuse test is conservative but must be *sound*:
    // every hit it takes must still reproduce execution exactly.
    for w in tlr_workloads::all() {
        let prog = w.program_with(17, 3);
        let mut plain = Vm::new(&prog);
        plain.run(10_000_000, &mut NullSink).unwrap();
        let expect = fingerprint(&plain);
        let mut engine = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)).with_valid_bit(),
        );
        let stats = engine.run(20_000_000).unwrap();
        assert!(stats.halted, "{}: did not halt", w.name);
        assert_eq!(stats.total(), plain.executed(), "{}", w.name);
        assert_eq!(
            fingerprint(engine.vm()),
            expect,
            "{}: valid-bit reuse corrupted state",
            w.name
        );
    }
}

#[test]
fn valid_bit_never_reuses_more_than_value_comparison() {
    for name in ["ijpeg", "turb3d", "gcc"] {
        let w = tlr_workloads::by_name(name).unwrap();
        let prog = w.program_with(17, 12);
        let base = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let value = TraceReuseEngine::new(&prog, base).run(150_000).unwrap();
        let vb = TraceReuseEngine::new(&prog, base.with_valid_bit())
            .run(150_000)
            .unwrap();
        assert!(
            vb.pct_reused() <= value.pct_reused() + 1e-9,
            "{name}: valid-bit ({}) beat value comparison ({})",
            vb.pct_reused(),
            value.pct_reused()
        );
    }
}

#[test]
fn basic_block_heuristic_works_and_preserves_state() {
    for name in ["compress", "li"] {
        let w = tlr_workloads::by_name(name).unwrap();
        let prog = w.program_with(17, 6);
        let mut plain = Vm::new(&prog);
        plain.run(10_000_000, &mut NullSink).unwrap();
        let mut engine = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::BasicBlock),
        );
        let stats = engine.run(20_000_000).unwrap();
        assert!(stats.halted);
        assert!(stats.reuse_ops > 0, "{name}: basic blocks never reused");
        assert_eq!(fingerprint(engine.vm()), fingerprint(&plain), "{name}");
    }
}

#[test]
fn engine_actually_reuses_on_every_workload() {
    // The equivalence test would pass trivially if the RTM never hit;
    // verify reuse actually happens for every benchmark at realistic
    // budgets.
    for w in tlr_workloads::all() {
        let prog = w.program_with(17, 8);
        let mut engine = TraceReuseEngine::new(
            &prog,
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
        );
        let stats = engine.run(100_000).unwrap();
        assert!(
            stats.reuse_ops > 0,
            "{}: no reuse at all (pct_reused {:.2})",
            w.name,
            stats.pct_reused()
        );
    }
}
