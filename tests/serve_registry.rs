//! `tlr-serve` integration: concurrent fetches from a snapshot
//! directory, merged-warm acceptance (pooled reuse state beats either
//! contributor alone without perturbing architectural state), and
//! publish-back pooling.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use trace_reuse::persist::{program_fingerprint, save_snapshot};
use trace_reuse::prelude::*;
use trace_reuse::serve::RegistryStats;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlr-serve-test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn cold_snapshot(
    program: &Program,
    config: EngineConfig,
    budget: u64,
) -> (EngineStats, RtmSnapshot) {
    let mut engine = TraceReuseEngine::new(program, config);
    let stats = engine.run(budget).unwrap();
    (
        stats,
        engine.export_rtm().expect("value-compare RTM snapshots"),
    )
}

/// The acceptance scenario: N threads fetch RTMs for distinct
/// fingerprints concurrently from one snapshot directory, warm-run
/// their workload, and publish back — while the registry's counters
/// stay exact.
#[test]
fn threads_fetch_distinct_fingerprints_concurrently() {
    let names = ["compress", "ijpeg", "li", "tomcatv", "vortex", "gcc"];
    let dir = temp_dir("concurrent");
    let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
    let budget = 25_000;

    let mut programs = Vec::new();
    for name in names {
        let program = tlr_workloads::by_name(name).unwrap().program(11);
        let fingerprint = program_fingerprint(&program);
        let (_, snapshot) = cold_snapshot(&program, config, budget);
        assert!(!snapshot.is_empty(), "{name}: cold run collected nothing");
        save_snapshot(&dir.join(format!("{name}.tlrsnap")), fingerprint, &snapshot).unwrap();
        programs.push((name, program, fingerprint));
    }

    let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
    assert_eq!(registry.fingerprints().len(), names.len());

    const ROUNDS: u64 = 3;
    let warm_hits = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for (name, program, fingerprint) in &programs {
            let registry = &registry;
            let warm_hits = &warm_hits;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let snapshot = registry
                        .get(*fingerprint)
                        .unwrap()
                        .unwrap_or_else(|| panic!("{name}: no snapshot served"));
                    assert!(!snapshot.is_empty(), "{name}: empty snapshot served");
                    let stats = TraceReuseEngine::new_warm(program, config, &snapshot)
                        .run(budget)
                        .unwrap();
                    if stats.reuse_ops > 0 {
                        warm_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert!(
        warm_hits.load(Ordering::Relaxed) > 0,
        "no warm run reused anything"
    );

    // Each fingerprint: exactly one load, ROUNDS - 1 resident hits.
    let stats: RegistryStats = registry.stats();
    assert_eq!(stats.resident, names.len() as u64);
    assert_eq!(stats.misses, names.len() as u64);
    assert_eq!(stats.hits, names.len() as u64 * (ROUNDS - 1));
    assert_eq!(stats.unknown, 0);
    for (name, _, fingerprint) in &programs {
        let entry = registry.entry_stats(*fingerprint).unwrap();
        assert_eq!((entry.misses, entry.hits), (1, ROUNDS - 1), "{name}");
    }
}

/// Acceptance: a workload warm-started from `merge(cold_a, cold_b)`
/// reuses at least as much as from either snapshot alone, and its
/// architectural state is identical to a plain (reuse-free) run.
#[test]
fn merged_warm_start_beats_solo_and_preserves_state() {
    // Looping kernels whose trace unions fit RTM_32K: the pooled
    // snapshot strictly dominates each contributor. Short iteration
    // counts so every run reaches `halt` — architectural state is only
    // comparable at a common stopping point (a budget-exhausted engine
    // run overshoots the budget by up to one reused trace).
    for name in ["ijpeg", "go"] {
        let program = tlr_workloads::by_name(name)
            .unwrap()
            .program_with(20260611, 10);
        let rtm = RtmConfig::RTM_32K;
        let budget = 200_000;

        // Two cold runs with different collection heuristics stand in
        // for two fleet runs exploring different traces.
        let (_, snap_a) = cold_snapshot(
            &program,
            EngineConfig::paper(rtm, Heuristic::FixedExp(2)),
            budget,
        );
        let (_, snap_b) = cold_snapshot(
            &program,
            EngineConfig::paper(rtm, Heuristic::FixedExp(6)),
            budget,
        );
        let merged = RtmSnapshot::merge(&[snap_a.clone(), snap_b.clone()]).unwrap();

        let warm_config = EngineConfig::paper(rtm, Heuristic::FixedExp(4));
        let warm = |snapshot: &RtmSnapshot| {
            let mut engine = TraceReuseEngine::new_warm(&program, warm_config, snapshot);
            let stats = engine.run(budget).unwrap();
            (stats, engine)
        };
        let (stats_a, _) = warm(&snap_a);
        let (stats_b, _) = warm(&snap_b);
        let (stats_m, engine_m) = warm(&merged);

        let best_solo = stats_a.pct_reused().max(stats_b.pct_reused());
        assert!(
            stats_m.pct_reused() >= best_solo - 1e-9,
            "{name}: merged-warm {:.3}% < best solo-warm {:.3}%",
            stats_m.pct_reused(),
            best_solo
        );

        // Architectural state must be exactly the plain run's.
        assert!(stats_m.halted, "{name}: merged-warm run did not halt");
        let mut plain = Vm::new(&program);
        plain.run(budget, &mut NullSink).unwrap();
        assert_eq!(
            stats_m.total(),
            plain.executed(),
            "{name}: progress accounting diverged"
        );
        for r in 0..32u8 {
            assert_eq!(
                engine_m.vm().peek_loc(Loc::IntReg(r)),
                plain.peek_loc(Loc::IntReg(r)),
                "{name}: r{r} differs after merged-warm run"
            );
            assert_eq!(
                engine_m.vm().peek_loc(Loc::FpReg(r)),
                plain.peek_loc(Loc::FpReg(r)),
                "{name}: f{r} differs after merged-warm run"
            );
        }
    }
}

/// Publish-back pools state: after a run contributes its RTM, the next
/// fetch serves the union, and the refresh is visible in the stats.
#[test]
fn publish_back_pools_state_for_next_fetch() {
    let name = "compress";
    let program = tlr_workloads::by_name(name).unwrap().program(5);
    let config = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
    let fingerprint = program_fingerprint(&program);
    let dir = temp_dir("publish-back");
    let (_, seed_snapshot) = cold_snapshot(&program, config, 10_000);
    save_snapshot(&dir.join("seed.tlrsnap"), fingerprint, &seed_snapshot).unwrap();

    let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
    let first = registry.get(fingerprint).unwrap().unwrap();

    // A longer run collects more traces; publish them back.
    let mut engine = TraceReuseEngine::new_warm(&program, config, &first);
    engine.run(40_000).unwrap();
    let export = engine.export_rtm().unwrap();
    registry.publish(fingerprint, &export).unwrap();

    let second = registry.get(fingerprint).unwrap().unwrap();
    assert!(
        second.len() >= first.len(),
        "pooled state shrank: {} -> {}",
        first.len(),
        second.len()
    );
    let entry = registry.entry_stats(fingerprint).unwrap();
    assert_eq!(entry.refreshes, 1);
    assert_eq!(entry.misses, 1);
    assert_eq!(entry.hits, 1);
}
