//! End-to-end figure-shape regression tests: quick-budget runs of the
//! whole harness must reproduce the paper's *qualitative* results. These
//! are the claims DESIGN.md commits to; a workload or analysis change
//! that breaks a headline shape fails here.

use tlr_bench::{run_engine_grid, run_limit_studies, BenchResult, HarnessConfig};
use tlr_core::{Heuristic, RtmConfig};

fn results() -> Vec<BenchResult> {
    run_limit_studies(&HarnessConfig {
        budget: 120_000,
        ..HarnessConfig::default()
    })
}

fn by_name<'a>(results: &'a [BenchResult], name: &str) -> &'a BenchResult {
    results.iter().find(|r| r.name == name).unwrap()
}

fn havg(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    tlr_stats::harmonic_mean(&v).unwrap()
}

#[test]
fn headline_shapes_hold() {
    let results = results();

    // -- Figure 3: reusability is high on average, applu lowest band,
    //    hydro2d the highest.
    let avg_reuse = tlr_stats::arithmetic_mean(
        &results
            .iter()
            .map(|r| r.limit.reusability_pct)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(
        (80.0..95.0).contains(&avg_reuse),
        "avg reusability {avg_reuse}"
    );
    let applu = by_name(&results, "applu").limit.reusability_pct;
    let hydro = by_name(&results, "hydro2d").limit.reusability_pct;
    assert!(applu < 72.0, "applu reusability too high: {applu}");
    assert!(hydro > 95.0, "hydro2d reusability too low: {hydro}");
    for r in &results {
        assert!(
            r.limit.reusability_pct >= applu - 5.0,
            "{} less reusable than applu",
            r.name
        );
    }

    // -- Figures 4/5 vs 6/8: TLR beats ILR on average, at every latency.
    for lat in [1u64, 2, 3, 4] {
        let ilr = havg(results.iter().map(|r| r.limit.ilr_speedup_win(lat)));
        let tlr = havg(results.iter().map(|r| r.limit.tlr_speedup_win(lat)));
        assert!(tlr > ilr, "lat {lat}: tlr {tlr} <= ilr {ilr}");
    }

    // -- Figure 4b/5b: ILR collapses at latency 4 (≈ no benefit).
    let ilr4 = havg(results.iter().map(|r| r.limit.ilr_speedup_win(4)));
    assert!(ilr4 < 1.25, "ILR@4 should be near 1, got {ilr4}");
    // -- Figure 8a: TLR still clearly profitable at latency 4.
    let tlr4 = havg(results.iter().map(|r| r.limit.tlr_speedup_win(4)));
    assert!(tlr4 > 1.5, "TLR@4 should stay high, got {tlr4}");

    // -- Figure 6: the window-bypass effect — limited-window TLR ≥
    //    infinite-window TLR on average (the paper: 3.63 vs 3.03).
    let tlr_inf = havg(results.iter().map(|r| r.limit.tlr_speedup_inf(1)));
    let tlr_win = havg(results.iter().map(|r| r.limit.tlr_speedup_win(1)));
    assert!(
        tlr_win > tlr_inf,
        "window TLR {tlr_win} not above infinite TLR {tlr_inf}"
    );
    // ...while ILR shows the opposite trend (1.43 vs 1.50 in the paper):
    let ilr_inf = havg(results.iter().map(|r| r.limit.ilr_speedup_inf(1)));
    let ilr_win = havg(results.iter().map(|r| r.limit.ilr_speedup_win(1)));
    assert!(
        (ilr_win - ilr_inf).abs() < 0.5,
        "ILR window/infinite gap implausible: {ilr_win} vs {ilr_inf}"
    );

    // -- Figure 6a extremes: ijpeg is the TLR champion; perl gains
    //    essentially nothing (paper: 11.57 and 1.01).
    let ijpeg = by_name(&results, "ijpeg").limit.tlr_speedup_inf(1);
    let perl = by_name(&results, "perl").limit.tlr_speedup_inf(1);
    assert!(ijpeg > 6.0, "ijpeg TLR too low: {ijpeg}");
    assert!(perl < 1.15, "perl TLR should be ~1: {perl}");
    for r in &results {
        assert!(
            r.limit.tlr_speedup_inf(1) <= ijpeg + 1e-9,
            "{} beats ijpeg in fig6a",
            r.name
        );
    }

    // -- Figure 4a: compress and turb3d lead ILR (multiplies on reusable
    //    critical paths); gcc/fpppp gain ≈ nothing.
    let compress = by_name(&results, "compress").limit.ilr_speedup_inf(1);
    let gcc = by_name(&results, "gcc").limit.ilr_speedup_inf(1);
    let fpppp = by_name(&results, "fpppp").limit.ilr_speedup_inf(1);
    assert!(compress > 2.0, "compress ILR {compress}");
    assert!(gcc < 1.1 && fpppp < 1.1, "gcc {gcc} fpppp {fpppp}");

    // -- Figure 7: hydro2d has by far the largest traces; FP suite is
    //    bimodal (applu/apsi/fpppp short).
    // (At the full 400k budget hydro2d averages ≈165; the quick budget
    // here dilutes it with the non-reusable first sweep.)
    let hydro_size = by_name(&results, "hydro2d").limit.trace_stats.avg_size();
    assert!(hydro_size > 80.0, "hydro2d traces {hydro_size}");
    for r in &results {
        assert!(
            r.limit.trace_stats.avg_size() <= hydro_size + 1e-9,
            "{} has larger traces than hydro2d",
            r.name
        );
    }
    for name in ["applu", "apsi", "fpppp"] {
        let size = by_name(&results, name).limit.trace_stats.avg_size();
        assert!(size < 12.0, "{name} traces too long: {size}");
    }

    // -- Figure 8b: proportional-latency speed-up decreases in K but
    //    stays profitable at K = 1/16 (the paper: ≈ 2.7).
    let mut prev = f64::INFINITY;
    for k in [1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0] {
        let s = havg(results.iter().map(|r| r.limit.tlr_speedup_k(k)));
        assert!(s <= prev + 1e-9, "K={k}: {s} above previous {prev}");
        prev = s;
    }
    let k16 = havg(results.iter().map(|r| r.limit.tlr_speedup_k(1.0 / 16.0)));
    assert!(k16 > 1.5, "K=1/16 speed-up {k16}");

    // -- §4.5: reused instructions need well under one read and one
    //    write each.
    let reads = tlr_stats::arithmetic_mean(
        &results
            .iter()
            .map(|r| r.limit.trace_stats.reads_per_reused_instr())
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let writes = tlr_stats::arithmetic_mean(
        &results
            .iter()
            .map(|r| r.limit.trace_stats.writes_per_reused_instr())
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(reads < 0.8, "reads/reused instr {reads}");
    assert!(writes < 0.8, "writes/reused instr {writes}");
}

#[test]
fn fig9_shapes_hold() {
    let cfg = HarnessConfig {
        budget: 60_000,
        ..HarnessConfig::default()
    };
    let rtms = [RtmConfig::RTM_512, RtmConfig::RTM_4K, RtmConfig::RTM_32K];
    let heuristics = [
        Heuristic::IlrNe,
        Heuristic::IlrExp,
        Heuristic::FixedExp(2),
        Heuristic::FixedExp(6),
    ];
    let cells = run_engine_grid(&cfg, &rtms, &heuristics);

    let avg = |rtm: RtmConfig, h: Heuristic, f: &dyn Fn(&tlr_core::EngineStats) -> f64| {
        let v: Vec<f64> = cells
            .iter()
            .filter(|c| c.rtm == rtm && c.heuristic == h)
            .map(|c| f(&c.stats))
            .collect();
        tlr_stats::arithmetic_mean(&v).unwrap()
    };

    // Larger RTMs reuse at least as much (Figure 9a's capacity trend).
    for &h in &heuristics {
        let small = avg(RtmConfig::RTM_512, h, &|s| s.pct_reused());
        let big = avg(RtmConfig::RTM_32K, h, &|s| s.pct_reused());
        assert!(
            big >= small - 1.0,
            "{}: 32K ({big}) worse than 512 ({small})",
            h.label()
        );
    }
    // Fixed-length traces grow with n (Figure 9b).
    let s2 = avg(RtmConfig::RTM_4K, Heuristic::FixedExp(2), &|s| {
        s.avg_reused_trace_size()
    });
    let s6 = avg(RtmConfig::RTM_4K, Heuristic::FixedExp(6), &|s| {
        s.avg_reused_trace_size()
    });
    assert!(s6 > s2, "I6 traces ({s6}) not larger than I2 ({s2})");
    // Expansion grows ILR traces.
    let ne = avg(RtmConfig::RTM_4K, Heuristic::IlrNe, &|s| {
        s.avg_reused_trace_size()
    });
    let exp = avg(RtmConfig::RTM_4K, Heuristic::IlrExp, &|s| {
        s.avg_reused_trace_size()
    });
    assert!(exp >= ne * 0.95, "expansion shrank traces: {exp} vs {ne}");
    // Some reuse happens everywhere at 4K+.
    for &h in &heuristics {
        let pct = avg(RtmConfig::RTM_4K, h, &|s| s.pct_reused());
        assert!(pct > 3.0, "{}: almost no reuse ({pct}%)", h.label());
    }
}
