//! Property tests for value-independent trace identity: the shape
//! fingerprint, [`TraceKey`], the live-in value check at reuse time,
//! and shape preservation through merge and both persist codecs.
//!
//! The invariant under test, end to end: *identity* (which program,
//! which trace shape) is value-independent, while *validity* (may this
//! trace be reused right now) is decided only by comparing live-in
//! values at the fetch point. Sharing reuse state across data seeds is
//! safe exactly because the identity layer never weakens the validity
//! layer.

use proptest::prelude::*;
use tlr_core::{ReplacementPolicy, ReuseTraceMemory, RtmConfig, RtmSnapshot, TraceRecord};
use tlr_isa::Loc;
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_persist::{load_snapshot, program_fingerprint, program_shape_fingerprint, save_snapshot};

/// A minimal one-trace record with every live-in/live-out pinned to
/// `v`-derived values: same code shape for every `v`.
fn record(start_pc: u32, v: u64) -> TraceRecord {
    TraceRecord {
        start_pc,
        next_pc: start_pc + 2,
        len: 2,
        ins: vec![(Loc::IntReg(1), v), (Loc::Mem(0x40), v ^ 0x5a)].into_boxed_slice(),
        outs: vec![(Loc::IntReg(2), v.wrapping_mul(3))].into_boxed_slice(),
        mix: Default::default(),
    }
}

fn snapshot_with_shape(v: u64, shape: u64) -> RtmSnapshot {
    let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
    rtm.insert(record(8, v));
    let mut snap = rtm.export();
    snap.shape = shape;
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same workload under different data seeds: the shape fingerprint
    /// is identical (the code is), while the value fingerprint tracks
    /// the data image.
    #[test]
    fn shape_fingerprint_is_data_independent(
        ix in 0usize..14,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let w = tlr_workloads::all()[ix];
        let a = w.program(seed_a);
        let b = w.program(seed_b);
        prop_assert_eq!(
            program_shape_fingerprint(&a),
            program_shape_fingerprint(&b),
            "{}: data seed changed the shape fingerprint", w.name
        );
        if a.data == b.data {
            prop_assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
        } else {
            prop_assert!(
                program_fingerprint(&a) != program_fingerprint(&b),
                "{}: different data images collided on the value fingerprint", w.name
            );
        }
    }

    /// Different workloads never share a shape fingerprint, under any
    /// seed: shape resolution can only ever pool state across data
    /// variants of the *same* code.
    #[test]
    fn distinct_programs_have_distinct_shapes(seed in any::<u64>()) {
        let shapes: Vec<(String, u64)> = tlr_workloads::all()
            .iter()
            .map(|w| (w.name.to_string(), program_shape_fingerprint(&w.program(seed))))
            .collect();
        for (i, (name_a, shape_a)) in shapes.iter().enumerate() {
            for (name_b, shape_b) in &shapes[i + 1..] {
                prop_assert!(
                    shape_a != shape_b,
                    "{} and {} share a shape fingerprint", name_a, name_b
                );
            }
        }
    }

    /// [`TraceKey`] strips live-in values — records differing only in
    /// data have equal keys — but the RTM's reuse test still rejects a
    /// lookup whose current state disagrees with the stored live-ins,
    /// and counts the rejection.
    #[test]
    fn trace_key_ignores_values_but_the_reuse_test_does_not(
        pc in 0u32..1_000,
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let y = if x == y { y.wrapping_add(1) } else { y };
        let stored = record(pc, x);
        let incoming = record(pc, y);
        prop_assert_eq!(stored.key(), incoming.key());

        let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(stored);
        // State pinned to the wrong data: the shape-identical trace
        // must NOT be reused, and the miss is attributed to the value
        // check rather than absence.
        let miss = rtm.lookup(pc, |loc| match loc {
            Loc::IntReg(1) => y,
            Loc::Mem(0x40) => y ^ 0x5a,
            _ => 0,
        });
        prop_assert!(miss.is_none(), "stale live-ins were reused");
        prop_assert!(rtm.stats().value_rejects >= 1, "value rejection not counted");
        // State matching the stored live-ins: the same trace is valid.
        let hit = rtm.lookup(pc, |loc| match loc {
            Loc::IntReg(1) => x,
            Loc::Mem(0x40) => x ^ 0x5a,
            _ => 0,
        });
        prop_assert!(hit.is_some(), "matching live-ins were rejected");
    }

    /// Keys separate code: a different start PC or a different live-in
    /// location set is a different trace identity.
    #[test]
    fn trace_key_distinguishes_code(
        pc_a in 0u32..1_000,
        pc_b in 0u32..1_000,
        v in any::<u64>(),
    ) {
        let pc_b = if pc_a == pc_b { pc_b + 1 } else { pc_b };
        prop_assert_ne!(record(pc_a, v).key(), record(pc_b, v).key());
        let narrow = TraceRecord {
            ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
            ..record(pc_a, v)
        };
        prop_assert_ne!(record(pc_a, v).key(), narrow.key());
    }

    /// The shape fingerprint survives the full persistence surface
    /// under every replacement policy: merge (agreeing shapes), the
    /// binary codec, and the JSON codec. Disagreeing shapes poison the
    /// merge to 0 (value-pinned), and a 0 participant never vetoes.
    #[test]
    fn shape_survives_merge_and_both_codecs(
        shape_a in 1u64..u64::MAX,
        shape_b in 1u64..u64::MAX,
        v in any::<u64>(),
    ) {
        for &policy in &ReplacementPolicy::ALL {
            let merged = RtmSnapshot::merge_with(
                &[snapshot_with_shape(v, shape_a), snapshot_with_shape(v ^ 1, shape_a)],
                policy,
            ).unwrap();
            prop_assert_eq!(merged.shape, shape_a, "[{}] agreeing merge lost the shape", policy);

            let with_unknown = RtmSnapshot::merge_with(
                &[snapshot_with_shape(v, 0), snapshot_with_shape(v ^ 1, shape_a)],
                policy,
            ).unwrap();
            prop_assert_eq!(with_unknown.shape, shape_a, "[{}] a value-pinned input vetoed", policy);

            if shape_a != shape_b {
                let conflicted = RtmSnapshot::merge_with(
                    &[snapshot_with_shape(v, shape_a), snapshot_with_shape(v ^ 1, shape_b)],
                    policy,
                ).unwrap();
                prop_assert_eq!(conflicted.shape, 0, "[{}] conflicting shapes not poisoned", policy);
            }

            // Binary round-trip.
            let mut bytes = Vec::new();
            write_snapshot(&mut bytes, 0xfeed, &merged).unwrap();
            let (_, loaded) = read_snapshot(&mut bytes.as_slice(), Some(0xfeed)).unwrap();
            prop_assert_eq!(loaded.shape, shape_a, "[{}] binary codec lost the shape", policy);
            prop_assert_eq!(&loaded, &merged);

            // JSON round-trip (the debug format, selected by extension).
            let path = std::env::temp_dir().join(format!(
                "tlr-prop-identity-{}.json",
                std::process::id()
            ));
            save_snapshot(&path, 0xfeed, &merged).unwrap();
            let (_, loaded) = load_snapshot(&path, Some(0xfeed)).unwrap();
            let _ = std::fs::remove_file(&path);
            prop_assert_eq!(loaded.shape, shape_a, "[{}] JSON codec lost the shape", policy);
            prop_assert_eq!(&loaded, &merged);
        }
    }
}
