//! Persistence properties: serialize → deserialize is the identity for
//! `DynInstr` streams and RTM snapshots, in both the binary and the JSON
//! debug format; damaged or incompatible files are rejected.

use proptest::prelude::*;
use std::path::PathBuf;
use tlr_core::{RtmConfig, RtmSnapshot, TraceRecord};
use tlr_isa::{DynInstr, Loc, OpClass};
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_persist::{
    load_snapshot, load_trace, save_snapshot, save_trace, PersistError, TraceReader, TraceWriter,
};

fn loc_strategy() -> impl Strategy<Value = Loc> {
    prop_oneof![
        (0u8..31).prop_map(Loc::IntReg),
        (0u8..31).prop_map(Loc::FpReg),
        (0u64..1 << 40).prop_map(Loc::Mem),
    ]
}

fn dyn_instr_strategy() -> impl Strategy<Value = DynInstr> {
    (
        0u32..10_000,
        0u32..10_000,
        0usize..OpClass::ALL.len(),
        proptest::collection::vec((loc_strategy(), any::<u64>()), 0..4),
        proptest::collection::vec((loc_strategy(), any::<u64>()), 0..2),
    )
        .prop_map(|(pc, next_pc, class, reads, writes)| DynInstr {
            pc,
            next_pc,
            class: OpClass::ALL[class],
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
        })
}

fn trace_record_strategy() -> impl Strategy<Value = TraceRecord> {
    (
        0u32..10_000,
        0u32..10_000,
        1u32..4096,
        proptest::collection::vec((loc_strategy(), any::<u64>()), 0..12),
        proptest::collection::vec((loc_strategy(), any::<u64>()), 0..12),
    )
        .prop_map(|(start_pc, next_pc, len, ins, outs)| TraceRecord {
            start_pc,
            next_pc,
            len,
            ins: ins.into_boxed_slice(),
            outs: outs.into_boxed_slice(),
            mix: Default::default(),
        })
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tlr-persist-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary stream round-trip: every record and the halt flag survive.
    #[test]
    fn stream_binary_roundtrip(
        records in proptest::collection::vec(dyn_instr_strategy(), 0..64),
        fingerprint in any::<u64>(),
        halted in any::<u64>(),
    ) {
        let halted = halted & 1 == 1;
        let path = temp_path("stream.tlrtrace");
        save_trace(&path, fingerprint, &records, halted).unwrap();
        let loaded = load_trace(&path, Some(fingerprint)).unwrap();
        prop_assert_eq!(&loaded.records, &records);
        prop_assert_eq!(loaded.halted, halted);
        prop_assert_eq!(loaded.fingerprint, fingerprint);
    }

    /// JSON stream round-trip.
    #[test]
    fn stream_json_roundtrip(
        records in proptest::collection::vec(dyn_instr_strategy(), 0..32),
        fingerprint in any::<u64>(),
    ) {
        let path = temp_path("stream.json");
        save_trace(&path, fingerprint, &records, true).unwrap();
        let loaded = load_trace(&path, Some(fingerprint)).unwrap();
        prop_assert_eq!(&loaded.records, &records);
        prop_assert!(loaded.halted);
    }

    /// RTM snapshot round-trip, binary and JSON.
    #[test]
    fn snapshot_roundtrip_both_formats(
        traces in proptest::collection::vec(trace_record_strategy(), 0..32),
        fingerprint in any::<u64>(),
    ) {
        let mut snapshot = RtmSnapshot::from_traces(RtmConfig::RTM_4K, traces);
        // Non-zero provenance, so the roundtrip proves v3 carries it.
        for (i, m) in snapshot.meta.iter_mut().enumerate() {
            m.hits = fingerprint.wrapping_add(i as u64);
            m.last_use = i as u64 * 17;
            m.source_run = fingerprint ^ 0x5a5a;
        }

        let mut buf = Vec::new();
        write_snapshot(&mut buf, fingerprint, &snapshot).unwrap();
        let (fp, loaded) = read_snapshot(&mut buf.as_slice(), Some(fingerprint)).unwrap();
        prop_assert_eq!(fp, fingerprint);
        prop_assert_eq!(&loaded, &snapshot);

        let path = temp_path("snap.json");
        save_snapshot(&path, fingerprint, &snapshot).unwrap();
        let (fp, loaded) = load_snapshot(&path, Some(fingerprint)).unwrap();
        prop_assert_eq!(fp, fingerprint);
        prop_assert_eq!(&loaded, &snapshot);
    }
}

fn sample_stream_bytes(fingerprint: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut writer = TraceWriter::new(&mut buf, fingerprint).unwrap();
    use tlr_isa::StreamSink;
    writer.observe(&DynInstr {
        pc: 1,
        next_pc: 2,
        class: OpClass::IntAlu,
        reads: [(Loc::IntReg(1), 5)].into_iter().collect(),
        writes: [(Loc::IntReg(2), 6)].into_iter().collect(),
    });
    writer.close().unwrap();
    buf
}

#[test]
fn corrupt_magic_rejected() {
    let mut buf = sample_stream_bytes(9);
    buf[0] = b'Z';
    match TraceReader::new(buf.as_slice(), None) {
        Err(PersistError::BadMagic { .. }) => {}
        other => panic!(
            "expected BadMagic, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }
}

#[test]
fn version_mismatch_rejected() {
    let mut buf = sample_stream_bytes(9);
    buf[4] = 0x7f; // future version
    match TraceReader::new(buf.as_slice(), None) {
        Err(PersistError::UnsupportedVersion { found, .. }) => assert_eq!(found, 0x7f),
        other => panic!(
            "expected UnsupportedVersion, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }
}

#[test]
fn fingerprint_mismatch_rejected_across_formats() {
    let buf = sample_stream_bytes(9);
    assert!(matches!(
        TraceReader::new(buf.as_slice(), Some(10)),
        Err(PersistError::FingerprintMismatch {
            found: 9,
            expected: 10
        })
    ));

    let path = temp_path("fp.json");
    save_trace(&path, 9, &[], false).unwrap();
    assert!(matches!(
        load_trace(&path, Some(10)),
        Err(PersistError::FingerprintMismatch { .. })
    ));
}

#[test]
fn kind_mismatch_rejected() {
    // Open a trace stream as a snapshot and vice versa.
    let stream = sample_stream_bytes(0);
    assert!(matches!(
        read_snapshot(&mut stream.as_slice(), None),
        Err(PersistError::KindMismatch { .. })
    ));

    let snapshot = RtmSnapshot::from_traces(RtmConfig::RTM_512, Vec::new());
    let mut buf = Vec::new();
    write_snapshot(&mut buf, 0, &snapshot).unwrap();
    assert!(matches!(
        TraceReader::new(buf.as_slice(), None),
        Err(PersistError::KindMismatch { .. })
    ));
}

#[test]
fn truncated_stream_rejected() {
    let mut buf = sample_stream_bytes(0);
    buf.truncate(buf.len() - 5);
    let mut reader = TraceReader::new(buf.as_slice(), None).unwrap();
    let err = loop {
        match reader.next_record() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("truncated stream accepted"),
            Err(e) => break e,
        }
    };
    assert!(err.to_string().contains("truncated"), "{err}");
}
