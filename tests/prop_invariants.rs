//! Cross-crate property tests: invariants the whole system must satisfy
//! regardless of workload or configuration.

use proptest::prelude::*;
use tlr_core::{InstrReuseTable, IoCaps, LimitConfig, LimitStudySink, TraceAccum};
use tlr_isa::{Alpha21164, StreamSink, UnitLatency};
use tlr_timing::{analyze_base, TimingSim, Window};
use tlr_workloads::synthetic::{generate, SyntheticConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// IPC is monotone in window size: a wider window never slows the
    /// base machine down.
    #[test]
    fn window_monotonicity(seed in any::<u64>(), redundancy in 0.0f64..1.0) {
        let cfg = SyntheticConfig { seed, redundancy, ..Default::default() };
        let stream = generate(&cfg, 3_000);
        let mut prev_cycles = u64::MAX;
        for w in [1usize, 8, 64, 512] {
            let res = analyze_base(&stream, Window::finite(w), &Alpha21164);
            prop_assert!(res.cycles <= prev_cycles, "window {w} slower");
            prev_cycles = res.cycles;
        }
        let inf = analyze_base(&stream, Window::infinite(), &Alpha21164);
        prop_assert!(inf.cycles <= prev_cycles);
    }

    /// The reuse oracle never hurts: every ILR/TLR variant in the limit
    /// study is at least as fast as its base machine.
    #[test]
    fn oracle_reuse_never_slower(seed in any::<u64>(), redundancy in 0.0f64..1.0) {
        let cfg = SyntheticConfig { seed, redundancy, ..Default::default() };
        let stream = generate(&cfg, 3_000);
        let mut sink = LimitStudySink::new(LimitConfig::default(), &Alpha21164);
        for d in &stream {
            sink.observe(d);
        }
        sink.finish();
        let res = sink.result();
        for lat in [1u64, 2, 3, 4] {
            prop_assert!(res.ilr_speedup_inf(lat) >= 1.0 - 1e-9);
            prop_assert!(res.ilr_speedup_win(lat) >= 1.0 - 1e-9);
            prop_assert!(res.tlr_speedup_win(lat) >= 1.0 - 1e-9);
            prop_assert!(res.tlr_speedup_inf(lat) >= 1.0 - 1e-9);
        }
        for &(k, _) in &res.tlr_win_prop {
            prop_assert!(res.tlr_speedup_k(k) >= 1.0 - 1e-9);
        }
    }

    /// Trace-level reusable instruction count can never exceed the
    /// instruction-level reusable count (Theorem 1's practical corollary:
    /// the maximal-trace partition covers exactly the ILR-reusable set).
    #[test]
    fn trace_coverage_equals_ilr_reusability(seed in any::<u64>(), redundancy in 0.1f64..0.95) {
        let cfg = SyntheticConfig { seed, redundancy, ..Default::default() };
        let stream = generate(&cfg, 3_000);
        let mut table = InstrReuseTable::new();
        let mut reusable = 0u64;
        for d in &stream {
            if table.probe_insert(d) {
                reusable += 1;
            }
        }
        let mut sink = LimitStudySink::new(LimitConfig::default(), &Alpha21164);
        for d in &stream {
            sink.observe(d);
        }
        sink.finish();
        let res = sink.result();
        prop_assert_eq!(res.trace_stats.instrs_in_traces, reusable);
    }

    /// TLR with constant latency is monotone: smaller latency is never
    /// slower.
    #[test]
    fn tlr_latency_monotone(seed in any::<u64>()) {
        let cfg = SyntheticConfig { seed, redundancy: 0.9, ..Default::default() };
        let stream = generate(&cfg, 3_000);
        let mut sink = LimitStudySink::new(LimitConfig::default(), &Alpha21164);
        for d in &stream {
            sink.observe(d);
        }
        sink.finish();
        let res = sink.result();
        let mut prev = f64::INFINITY;
        for lat in [1u64, 2, 3, 4] {
            let s = res.tlr_speedup_win(lat);
            prop_assert!(s <= prev + 1e-9, "latency {lat} faster than {}", lat - 1);
            prev = s;
        }
    }

    /// A trace accumulator under paper caps never exceeds them.
    #[test]
    fn accum_respects_caps(seed in any::<u64>()) {
        let cfg = SyntheticConfig { seed, redundancy: 0.5, mem_fraction: 0.6, ..Default::default() };
        let stream = generate(&cfg, 500);
        let mut acc = TraceAccum::new(IoCaps::PAPER);
        let mut records = Vec::new();
        for d in &stream {
            if !acc.try_add(d) {
                if let Some(rec) = acc.finalize() {
                    records.push(rec);
                }
                let _ = acc.try_add(d);
            }
        }
        records.extend(acc.finalize());
        for rec in &records {
            prop_assert!(rec.reg_ins() <= IoCaps::PAPER.reg_in);
            prop_assert!(rec.mem_ins() <= IoCaps::PAPER.mem_in);
            prop_assert!(rec.reg_outs() <= IoCaps::PAPER.reg_out);
            prop_assert!(rec.mem_outs() <= IoCaps::PAPER.mem_out);
            prop_assert!(rec.len >= 1);
        }
        // Nothing was lost: record lengths sum to the stream length.
        let total: u64 = records.iter().map(|r| r.len as u64).sum();
        prop_assert_eq!(total, stream.len() as u64);
    }

    /// Unit-latency sanity: with no dependences and an infinite window,
    /// everything completes at cycle 1.
    #[test]
    fn independent_stream_is_fully_parallel(n in 1usize..500) {
        let lat = UnitLatency;
        let mut sim = TimingSim::new(Window::infinite(), &lat);
        for pc in 0..n as u32 {
            let d = tlr_isa::DynInstr {
                pc,
                next_pc: pc + 1,
                class: tlr_isa::OpClass::IntAlu,
                reads: Default::default(),
                writes: Default::default(),
            };
            sim.step_normal(&d);
        }
        prop_assert_eq!(sim.cycles(), 1);
    }
}

/// The limit-study sink agrees with a direct reusability count on real
/// workloads (two code paths, one definition).
#[test]
fn sink_reusability_matches_direct_count() {
    for name in ["go", "turb3d"] {
        let w = tlr_workloads::by_name(name).unwrap();
        let prog = w.program_with(9, 4);
        let mut vm = tlr_vm::Vm::new(&prog);
        let mut sink = tlr_isa::CollectSink::default();
        vm.run(15_000, &mut sink).unwrap();

        let mut table = InstrReuseTable::new();
        let mut reusable = 0u64;
        for d in &sink.records {
            if table.probe_insert(d) {
                reusable += 1;
            }
        }
        let mut study = LimitStudySink::new(LimitConfig::default(), &Alpha21164);
        for d in &sink.records {
            study.observe(d);
        }
        study.finish();
        let res = study.result();
        let expect = 100.0 * reusable as f64 / sink.records.len() as f64;
        assert!((res.reusability_pct - expect).abs() < 1e-9, "{name}");
    }
}
