//! Format-v5 compatibility and delta-segment hardening: v4 files
//! (provenance + class mix, zero flags byte) must still load exactly,
//! a base plus its delta segments must reconstruct the same state as a
//! full snapshot of the final RTM under every replacement policy, and
//! corrupt delta segments — truncation, bit flips, cap-busting
//! geometry, mangled JSON — must be rejected with a descriptive
//! `PersistError` on both the binary and JSON paths.
//!
//! The v4 writer here is hand-rolled byte-for-byte from the historical
//! layout (like `snapshot_compat.rs` does for v2/v3), so these tests
//! keep failing loudly if the reader ever drops v4 support by
//! accident.

use proptest::prelude::*;
use std::hash::Hasher;
use std::path::PathBuf;
use tlr_core::{
    ReplacementPolicy, ReuseTraceMemory, RtmConfig, RtmSnapshot, SetAssocGeometry, TraceMeta,
    TraceRecord,
};
use tlr_isa::Loc;
use tlr_persist::snapshot::MAX_GEOMETRY_CAPACITY;
use tlr_persist::{
    base_file_name, delta_file_name, diff_snapshots, group_digests, load_merged_snapshots,
    load_merged_snapshots_with, load_snapshot, save_delta_segment, save_snapshot, DeltaSegment,
    Header, PersistError, FLAG_DELTA_SEGMENT, FORMAT_VERSION, KIND_RTM_SNAPSHOT,
    MIN_SUPPORTED_VERSION,
};
use tlr_util::fxhash::FxHasher64;

/// Per-test temp directory: each test function uses its own tag so the
/// deterministic `{fingerprint}-base` / `{fingerprint}-delta-NNNNNN`
/// file names never race across parallel test threads.
fn temp_path(tag: &str, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlr-delta-compat-{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn rec(pc: u32, v: u64) -> TraceRecord {
    TraceRecord {
        start_pc: pc,
        next_pc: pc + 3,
        len: 3,
        ins: vec![(Loc::IntReg(1), v), (Loc::Mem(64 + v * 8), v)].into_boxed_slice(),
        outs: vec![(Loc::IntReg(2), v * 7)].into_boxed_slice(),
        mix: Default::default(),
    }
}

/// A snapshot with one record per `(pc, value)` and distinct, non-zero
/// provenance, so delta diffs and digests cover the meta bytes too.
fn snapshot(pcs: &[(u32, u64)]) -> RtmSnapshot {
    let mut s = RtmSnapshot::from_traces(
        RtmConfig::RTM_512,
        pcs.iter().map(|(pc, v)| rec(*pc, *v)).collect(),
    );
    for (i, m) in s.meta.iter_mut().enumerate() {
        m.hits = i as u64 + 1;
        m.last_use = 100 + i as u64;
        m.source_run = 0x5eed;
    }
    s
}

// ---- a byte-level writer for the historical v4 layout ---------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_loc(out: &mut Vec<u8>, loc: Loc) {
    match loc {
        Loc::IntReg(n) => {
            out.push(0);
            out.push(n);
        }
        Loc::FpReg(n) => {
            out.push(1);
            out.push(n);
        }
        Loc::Mem(addr) => {
            out.push(2);
            put_u64(out, addr);
        }
    }
}

fn encode_record(rec: &TraceRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, rec.start_pc);
    put_u32(&mut out, rec.next_pc);
    put_u32(&mut out, rec.len);
    put_u16(&mut out, rec.ins.len() as u16);
    put_u16(&mut out, rec.outs.len() as u16);
    for (loc, val) in rec.ins.iter().chain(rec.outs.iter()) {
        put_loc(&mut out, *loc);
        put_u64(&mut out, *val);
    }
    out
}

/// A v4 entry frame: record, then 24 bytes of provenance, then the
/// lane-count-prefixed class mix — exactly what a v4 build wrote.
fn encode_v4_frame(rec: &TraceRecord, meta: &TraceMeta) -> Vec<u8> {
    let mut frame = encode_record(rec);
    put_u64(&mut frame, meta.hits);
    put_u64(&mut frame, meta.last_use);
    put_u64(&mut frame, meta.source_run);
    frame.push(tlr_isa::OpClass::COUNT as u8);
    for (_, count) in rec.mix.iter() {
        put_u32(&mut frame, count);
    }
    frame
}

/// Serialize a snapshot file of the given header `version` from raw
/// per-trace frame payloads. The flags byte (offset 7, reserved before
/// v5) is written as 0, the only legal value for v2–v4.
fn encode_snapshot_file(version: u16, fingerprint: u64, frames: &[Vec<u8>]) -> Vec<u8> {
    let geometry = RtmConfig::RTM_512.geometry;
    let mut out = Vec::new();
    out.extend_from_slice(b"TLRP");
    put_u16(&mut out, version);
    out.push(2); // kind: RTM snapshot
    out.push(0); // flags (reserved before v5)
    put_u64(&mut out, fingerprint);

    let mut prelude = Vec::new();
    put_u32(&mut prelude, geometry.sets);
    put_u32(&mut prelude, geometry.ways);
    put_u32(&mut prelude, geometry.per_pc);
    put_u64(&mut prelude, frames.len() as u64);
    out.extend_from_slice(&prelude);

    let mut checksum = FxHasher64::new();
    checksum.write(&prelude);
    for frame in frames {
        put_u32(&mut out, frame.len() as u32);
        out.extend_from_slice(frame);
        checksum.write(frame);
    }
    put_u32(&mut out, 0);
    put_u64(&mut out, frames.len() as u64);
    put_u64(&mut out, checksum.finish());
    out
}

// ---- v4 back-compat -------------------------------------------------------

#[test]
fn v4_snapshot_with_provenance_and_mix_still_loads() {
    // The v5 bump repurposed the reserved byte as flags; a v4 file's
    // content (record + provenance + mix, flags byte 0) must survive
    // unchanged. Anchor the version pair so this test is rewritten
    // deliberately on the next bump, not silently skipped.
    assert_eq!(FORMAT_VERSION, 6);
    assert_eq!(MIN_SUPPORTED_VERSION, 2);

    let mut counts = [0u32; tlr_isa::OpClass::COUNT];
    counts[tlr_isa::OpClass::IntAlu.index()] = 2;
    counts[tlr_isa::OpClass::Load.index()] = 1;
    let mix = tlr_isa::ClassMix::from_counts(counts);
    let records = [TraceRecord { mix, ..rec(8, 1) }, rec(16, 2)];
    let metas = [
        TraceMeta {
            hits: 5,
            last_use: 123,
            source_run: 9001,
        },
        TraceMeta {
            hits: 1,
            last_use: 200,
            source_run: 9001,
        },
    ];
    let frames: Vec<Vec<u8>> = records
        .iter()
        .zip(metas.iter())
        .map(|(r, m)| encode_v4_frame(r, m))
        .collect();
    let bytes = encode_snapshot_file(4, 77, &frames);
    let path = temp_path("v4", "v4.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();

    let (fp, loaded) = load_snapshot(&path, Some(77)).expect("v4 snapshot must still load");
    assert_eq!(fp, 77);
    assert_eq!(loaded.traces, records.to_vec());
    assert_eq!(loaded.meta, metas.to_vec(), "v4 provenance lost");
    // Trace identity ignores the mix, so check it explicitly.
    assert_eq!(loaded.traces[0].mix, mix, "v4 class mix lost");
    assert!(loaded.traces[1].mix.is_empty());
}

#[test]
fn v5_snapshot_loads_as_value_pinned() {
    // The v6 bump appended the shape fingerprint to the full-snapshot
    // prelude; a v5 file (20-byte prelude, same frame layout) must
    // still load, with shape 0 — value-pinned, never shape-shared.
    let records = [rec(8, 1), rec(16, 2)];
    let frames: Vec<Vec<u8>> = records
        .iter()
        .map(|r| encode_v4_frame(r, &TraceMeta::default()))
        .collect();
    let bytes = encode_snapshot_file(5, 78, &frames);
    let path = temp_path("v5", "v5.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();

    let (fp, loaded) = load_snapshot(&path, Some(78)).expect("v5 snapshot must still load");
    assert_eq!(fp, 78);
    assert_eq!(loaded.traces, records.to_vec());
    assert_eq!(loaded.shape, 0, "pre-v6 snapshots must be value-pinned");
}

#[test]
fn v4_header_with_flag_bits_rejected() {
    // Byte 7 was reserved-must-be-zero before v5: a v4 file claiming a
    // v5 flag is damaged, not "an old file with compression".
    let frames = vec![encode_v4_frame(&rec(8, 1), &TraceMeta::default())];
    let mut bytes = encode_snapshot_file(4, 77, &frames);
    bytes[7] = FLAG_DELTA_SEGMENT;
    let path = temp_path("v4", "v4-flagged.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(
                msg.contains("reserved header byte"),
                "unhelpful error: {msg}"
            )
        }
        other => panic!("expected Corrupt(reserved header byte), got {other:?}"),
    }
}

#[test]
fn v5_header_with_unknown_flag_rejected() {
    let path = temp_path("v5", "unknown-flag.tlrsnap");
    save_snapshot(&path, 9, &snapshot(&[(8, 1)])).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[7] |= 0x80; // a flag bit this build does not define
    std::fs::write(&path, &bytes).unwrap();
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(
                msg.contains("unknown header flags"),
                "unhelpful error: {msg}"
            )
        }
        other => panic!("expected Corrupt(unknown header flags), got {other:?}"),
    }
}

// ---- base ⊕ deltas == full snapshot, under every policy -------------------

/// A deliberately tiny geometry so capacity eviction — the thing that
/// makes whole-group replacement necessary — happens constantly.
const TINY: RtmConfig = RtmConfig {
    geometry: SetAssocGeometry {
        sets: 2,
        ways: 2,
        per_pc: 2,
    },
};

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    // Few PCs and few values: group churn, tombstones (groups evicted
    // whole), and unchanged groups all occur under the tiny geometry.
    (0u32..6, 1u32..5, 0u64..4, 0u64..4).prop_map(|(start_pc, len, in_val, out_val)| TraceRecord {
        start_pc,
        next_pc: start_pc + len,
        len,
        ins: vec![(Loc::IntReg(1), in_val)].into_boxed_slice(),
        outs: vec![(Loc::IntReg(2), out_val)].into_boxed_slice(),
        mix: Default::default(),
    })
}

/// One RTM evolving through 2–4 insert/use batches, exported after each
/// batch — the exact state sequence an engine's publish-backs see.
fn evolution_strategy() -> impl Strategy<Value = Vec<RtmSnapshot>> {
    proptest::collection::vec(
        proptest::collection::vec((record_strategy(), 0u8..4), 1..10),
        2..5,
    )
    .prop_map(|batches| {
        let mut rtm = ReuseTraceMemory::new(TINY);
        batches
            .into_iter()
            .map(|batch| {
                for (record, hits) in batch {
                    let (pc, in_val) = (record.start_pc, record.ins[0].1);
                    rtm.insert(record);
                    for _ in 0..hits {
                        rtm.lookup(pc, |l| if l == Loc::IntReg(1) { in_val } else { 0 });
                    }
                }
                rtm.export()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compaction invariant, end to end through real files: a base
    /// plus the delta chain diffed from consecutive exports loads to
    /// the same trace/provenance/mix state as a full snapshot of the
    /// final export, under every replacement policy. Serialization
    /// order is *not* part of the contract (overlay application loses
    /// the base's interleaving), so equality is judged on the
    /// order-insensitive per-group digests.
    #[test]
    fn base_plus_deltas_match_full_load_under_every_policy(states in evolution_strategy()) {
        let fp = 7u64;
        let base = temp_path("prop", &base_file_name(fp));
        save_snapshot(&base, fp, &states[0]).unwrap();
        let mut split = vec![base];
        for (i, pair) in states.windows(2).enumerate() {
            let seq = i as u64 + 1;
            let delta = diff_snapshots(&group_digests(&pair[0]).unwrap(), &pair[1], seq).unwrap();
            let path = temp_path("prop", &delta_file_name(fp, seq));
            // Alternate the codec so both frame encodings are replayed.
            save_delta_segment(&path, fp, &delta, i % 2 == 0).unwrap();
            split.push(path);
        }
        let full = temp_path("prop", "full.tlrsnap");
        save_snapshot(&full, fp, states.last().unwrap()).unwrap();

        for policy in ReplacementPolicy::ALL {
            let (_, from_split) = load_merged_snapshots_with(&split, Some(fp), policy).unwrap();
            let (_, from_full) =
                load_merged_snapshots_with(std::slice::from_ref(&full), Some(fp), policy).unwrap();
            prop_assert_eq!(
                from_split.len(),
                from_full.len(),
                "{}: split load holds a different trace count",
                policy
            );
            prop_assert_eq!(
                group_digests(&from_split).unwrap(),
                group_digests(&from_full).unwrap(),
                "{}: base + deltas reconstructed different state",
                policy
            );
        }
    }

    /// Random single-bit corruption anywhere in a delta segment is
    /// never silently accepted as different merged content: either the
    /// merged load fails, or the flip missed everything the codec reads
    /// and the reconstruction is unchanged.
    #[test]
    fn delta_bit_flips_never_alter_merged_content(
        offset in any::<u64>(),
        bit in 0u32..8,
        compress in any::<bool>(),
    ) {
        let old = snapshot(&[(0, 1), (4, 2), (8, 3)]);
        let new = snapshot(&[(0, 1), (4, 99), (12, 5)]);
        let delta = diff_snapshots(&group_digests(&old).unwrap(), &new, 42).unwrap();
        let base = temp_path("bitflip", &base_file_name(7));
        let delta_path = temp_path("bitflip", &delta_file_name(7, 42));
        save_snapshot(&base, 7, &old).unwrap();
        save_delta_segment(&delta_path, 7, &delta, compress).unwrap();
        let paths = [base, delta_path.clone()];
        let (_, clean) = load_merged_snapshots(&paths, None).unwrap();
        let clean_digests = group_digests(&clean).unwrap();

        let mut bytes = std::fs::read(&delta_path).unwrap();
        let offset = (offset % bytes.len() as u64) as usize;
        bytes[offset] ^= 1 << bit;
        std::fs::write(&delta_path, &bytes).unwrap();
        if let Ok((_, merged)) = load_merged_snapshots(&paths, None) {
            prop_assert_eq!(
                group_digests(&merged).unwrap(),
                clean_digests,
                "flipped bit {} of byte {} changed the merged state",
                bit,
                offset
            );
        }
    }

    /// Truncating a delta segment anywhere is always detected by the
    /// merged load — a half-written spill can never half-apply.
    #[test]
    fn delta_truncation_always_detected(cut in 0u64..u64::MAX, compress in any::<bool>()) {
        let old = snapshot(&[(0, 1), (4, 2), (8, 3)]);
        let new = snapshot(&[(0, 1), (4, 99), (12, 5)]);
        let delta = diff_snapshots(&group_digests(&old).unwrap(), &new, 1).unwrap();
        let base = temp_path("truncate", &base_file_name(7));
        let delta_path = temp_path("truncate", &delta_file_name(7, 1));
        save_snapshot(&base, 7, &old).unwrap();
        save_delta_segment(&delta_path, 7, &delta, compress).unwrap();

        let mut bytes = std::fs::read(&delta_path).unwrap();
        let cut = (cut % (bytes.len() as u64 - 1) + 1) as usize; // 1..len
        bytes.truncate(bytes.len() - cut);
        std::fs::write(&delta_path, &bytes).unwrap();
        prop_assert!(
            load_merged_snapshots(&[base, delta_path], None).is_err(),
            "truncated delta segment accepted ({cut} bytes cut)"
        );
    }
}

// ---- hostile delta segments -----------------------------------------------

#[test]
fn cap_busting_delta_geometry_rejected() {
    // The writer serializes whatever struct it is given, which is
    // exactly what a hostile producer would do; the reader's geometry
    // bounds must refuse it before any capacity-sized allocation.
    for (mutate, tag) in [
        (
            (|g: &mut SetAssocGeometry| g.sets = 1 << 30) as fn(&mut SetAssocGeometry),
            "sets",
        ),
        (|g: &mut SetAssocGeometry| g.ways = 1 << 30, "ways"),
        (|g: &mut SetAssocGeometry| g.per_pc = 1 << 30, "per_pc"),
    ] {
        let mut delta = DeltaSegment {
            seq: 1,
            config: RtmConfig::RTM_512,
            tombstones: vec![16],
            traces: vec![rec(4, 7)],
            meta: vec![TraceMeta::default()],
        };
        mutate(&mut delta.config.geometry);
        for ext in ["tlrsnap", "json"] {
            let path = temp_path("hostile", &format!("geom-{tag}.{ext}"));
            save_delta_segment(&path, 7, &delta, false).unwrap();
            match load_merged_snapshots(&[path], None) {
                Err(PersistError::Corrupt(msg)) => {
                    assert!(
                        msg.contains("oversized"),
                        "{tag}/{ext}: unhelpful error: {msg}"
                    )
                }
                other => panic!(
                    "{tag}/{ext}: expected Corrupt(oversized), got {:?}",
                    other.map(|(fp, s)| (fp, s.len()))
                ),
            }
        }
    }
}

#[test]
fn cap_busting_tombstone_count_rejected_before_allocation() {
    // Hand-rolled: a valid delta header whose prelude declares more
    // tombstones than any geometry admits, with no tombstone bytes
    // behind it. The reader must refuse on the declared count — if it
    // tried to read (or worse, allocate) first, this file would hang it
    // on EOF instead of producing the named error.
    let mut bytes = Vec::new();
    Header::with_flags(KIND_RTM_SNAPSHOT, 7, FLAG_DELTA_SEGMENT)
        .write_to(&mut bytes)
        .unwrap();
    let geometry = RtmConfig::RTM_512.geometry;
    put_u32(&mut bytes, geometry.sets);
    put_u32(&mut bytes, geometry.ways);
    put_u32(&mut bytes, geometry.per_pc);
    put_u64(&mut bytes, 0); // trace count
    put_u64(&mut bytes, 1); // seq
    put_u64(&mut bytes, MAX_GEOMETRY_CAPACITY + 1);
    let path = temp_path("hostile", "tombstone-cap.tlrsnap");
    std::fs::write(&path, &bytes).unwrap();
    match load_merged_snapshots(&[path], None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(
                msg.contains("tombstones") && msg.contains("cap"),
                "unhelpful error: {msg}"
            )
        }
        other => panic!(
            "expected Corrupt(tombstones over cap), got {:?}",
            other.map(|(fp, s)| (fp, s.len()))
        ),
    }
}

#[test]
fn json_corrupt_delta_rejected() {
    let delta = DeltaSegment {
        seq: 42,
        config: RtmConfig::RTM_512,
        tombstones: vec![77777],
        traces: vec![rec(4, 7)],
        meta: vec![TraceMeta {
            hits: 3,
            last_use: 11,
            source_run: 2,
        }],
    };
    let path = temp_path("json", "delta.json");
    save_delta_segment(&path, 5, &delta, false).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();
    assert!(
        good.contains("\"delta\""),
        "JSON dump lost its delta object"
    );

    // A delta alone is rejected by the single-file loader by name, on
    // the JSON path just like the binary one.
    match load_snapshot(&path, None) {
        Err(PersistError::Corrupt(msg)) => {
            assert!(msg.contains("delta segment"), "unhelpful error: {msg}")
        }
        other => panic!("expected Corrupt(delta segment), got {other:?}"),
    }

    // Each mutation corrupts only the delta object.
    for (tag, find, replace) in [
        ("seq-type", "\"seq\": 42", "\"seq\": \"many\""),
        ("missing-seq", "\"seq\"", "\"seqq\""),
        ("tombstones-shape", "\"tombstones\": [", "\"tombstones\": {"),
        ("tombstone-range", "77777", "4294967296"),
    ] {
        assert!(good.contains(find), "{tag}: fixture drifted ({find:?})");
        let bad = good.replacen(find, replace, 1);
        std::fs::write(&path, &bad).unwrap();
        assert!(
            load_merged_snapshots(std::slice::from_ref(&path), None).is_err(),
            "{tag}: corrupt delta accepted"
        );
    }
}
